// Package dimacs reads and writes CNF formulas in the DIMACS CNF format,
// the standard interchange format of the SAT community. The reader is
// tolerant of the common dialect variations found in benchmark archives:
// comment lines anywhere, clauses spanning multiple lines, multiple
// clauses per line, and a missing final terminating 0.
//
// SATLIB trailer dialect: the SATLIB benchmark archives (uf*/uuf* and
// friends) terminate every file with the two lines "%" and "0". A line
// whose first token is "%" is therefore treated as end-of-stream and
// everything after it is ignored. This matters for correctness, not just
// tolerance: read as clause data, the trailing "0" would terminate an
// empty clause, making every SATLIB instance either fail the declared
// clause count or — when the count happened to absorb it — silently
// become UNSAT. A bare "0" line before the trailer is still an explicit
// empty clause, as the format defines.
package dimacs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// ParseError describes a syntactic problem in a DIMACS stream.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dimacs: line %d: %s", e.Line, e.Msg)
}

// Read parses a DIMACS CNF stream into a Formula. The declared variable
// count from the problem line is honored (it may exceed the largest
// variable mentioned); a clause count mismatch is an error, as is a
// literal outside the declared range.
func Read(r io.Reader) (*cnf.Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var (
		f            *cnf.Formula
		declVars     int
		declClauses  = -1
		current      cnf.Clause
		line         int
		sawProbLine  bool
		clausesAdded int
	)

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "%") {
			// SATLIB end-of-stream trailer ("%" then "0"): stop reading so
			// the trailing 0 is not misparsed as an empty clause.
			break
		}
		if strings.HasPrefix(text, "p") {
			if sawProbLine {
				return nil, &ParseError{line, "duplicate problem line"}
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[0] != "p" || fields[1] != "cnf" {
				return nil, &ParseError{line, fmt.Sprintf("malformed problem line %q", text)}
			}
			var err error
			declVars, err = strconv.Atoi(fields[2])
			if err != nil || declVars < 0 {
				return nil, &ParseError{line, fmt.Sprintf("bad variable count %q", fields[2])}
			}
			declClauses, err = strconv.Atoi(fields[3])
			if err != nil || declClauses < 0 {
				return nil, &ParseError{line, fmt.Sprintf("bad clause count %q", fields[3])}
			}
			f = cnf.New(declVars)
			sawProbLine = true
			continue
		}
		if !sawProbLine {
			return nil, &ParseError{line, "clause data before problem line"}
		}
		for _, tok := range strings.Fields(text) {
			x, err := strconv.Atoi(tok)
			if err != nil {
				return nil, &ParseError{line, fmt.Sprintf("bad literal %q", tok)}
			}
			if x == 0 {
				f.AddClause(current)
				clausesAdded++
				current = nil
				continue
			}
			v := x
			if v < 0 {
				v = -v
			}
			if v > declVars {
				return nil, &ParseError{line,
					fmt.Sprintf("literal %d exceeds declared variable count %d", x, declVars)}
			}
			current = append(current, cnf.FromDIMACS(x))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: %w", err)
	}
	if !sawProbLine {
		return nil, &ParseError{line, "missing problem line"}
	}
	if len(current) > 0 { // tolerate missing trailing 0
		f.AddClause(current)
		clausesAdded++
	}
	if clausesAdded != declClauses {
		return nil, &ParseError{line,
			fmt.Sprintf("problem line declares %d clauses, found %d", declClauses, clausesAdded)}
	}
	// AddClause may have grown NumVars beyond the declaration only if a
	// literal exceeded declVars, which we rejected above; restore the
	// declared count in case it is larger than any mentioned variable.
	f.NumVars = declVars
	return f, nil
}

// ReadString parses a DIMACS CNF document held in a string.
func ReadString(s string) (*cnf.Formula, error) {
	return Read(strings.NewReader(s))
}

// Write emits the formula in DIMACS CNF format with an optional leading
// comment (may be multi-line; each line is prefixed with "c ").
func Write(w io.Writer, f *cnf.Formula, comment string) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, ln := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "c %s\n", ln); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, f.NumClauses()); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", l.DIMACS()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteString renders the formula as a DIMACS CNF document.
func WriteString(f *cnf.Formula, comment string) string {
	var sb strings.Builder
	// strings.Builder writes cannot fail.
	_ = Write(&sb, f, comment)
	return sb.String()
}
