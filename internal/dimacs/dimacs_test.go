package dimacs

import (
	"strings"
	"testing"

	"repro/internal/cnf"
)

const sample = `c paper Example 5
c S = (x1)(x2+!x3)(!x1+x3)(x1+!x2+x3)
p cnf 3 4
1 0
2 -3 0
-1 3 0
1 -2 3 0
`

func TestReadBasic(t *testing.T) {
	f, err := ReadString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || f.NumClauses() != 4 {
		t.Fatalf("dims: %d vars %d clauses", f.NumVars, f.NumClauses())
	}
	if f.Clauses[1].String() != "(x2 + !x3)" {
		t.Errorf("clause 1 = %s", f.Clauses[1])
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := ReadString(sample)
	if err != nil {
		t.Fatal(err)
	}
	out := WriteString(f, "round trip")
	g, err := ReadString(out)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, out)
	}
	if g.String() != f.String() {
		t.Errorf("round trip changed formula:\n%s\nvs\n%s", f, g)
	}
}

func TestReadMultiClausePerLine(t *testing.T) {
	f, err := ReadString("p cnf 2 2\n1 2 0 -1 -2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 2 {
		t.Errorf("clauses = %d, want 2", f.NumClauses())
	}
}

func TestReadClauseSpanningLines(t *testing.T) {
	f, err := ReadString("p cnf 3 1\n1\n-2\n3 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 || len(f.Clauses[0]) != 3 {
		t.Errorf("got %v", f.Clauses)
	}
}

func TestReadMissingTrailingZero(t *testing.T) {
	f, err := ReadString("p cnf 2 2\n1 2 0\n-1 -2\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 2 {
		t.Errorf("clauses = %d, want 2", f.NumClauses())
	}
}

func TestReadPercentTerminator(t *testing.T) {
	// SATLIB benchmark files end with "%" and a stray "0".
	_, err := ReadString("p cnf 1 1\n1 0\n%\n")
	if err != nil {
		t.Fatalf("SATLIB-style terminator rejected: %v", err)
	}
}

func TestReadDeclaredVarsExceedMentioned(t *testing.T) {
	f, err := ReadString("p cnf 10 1\n1 -2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 10 {
		t.Errorf("NumVars = %d, want declared 10", f.NumVars)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"clause before header": "1 2 0\np cnf 2 1\n",
		"duplicate header":     "p cnf 1 1\np cnf 1 1\n1 0\n",
		"malformed header":     "p cnf x 1\n1 0\n",
		"negative counts":      "p cnf -1 1\n1 0\n",
		"bad literal":          "p cnf 2 1\n1 foo 0\n",
		"literal out of range": "p cnf 2 1\n3 0\n",
		"clause count low":     "p cnf 2 3\n1 0\n",
		"clause count high":    "p cnf 2 1\n1 0\n2 0\n",
		"empty input":          "",
		"only comments":        "c nothing here\n",
	}
	for name, doc := range cases {
		if _, err := ReadString(doc); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := ReadString("p cnf 2 1\nzap 0\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 2 || !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("ParseError = %v", pe)
	}
}

func TestWriteComment(t *testing.T) {
	f := cnf.FromClauses([]int{1})
	out := WriteString(f, "two\nlines")
	if !strings.HasPrefix(out, "c two\nc lines\n") {
		t.Errorf("comment formatting:\n%s", out)
	}
}

func TestWriteEmptyFormula(t *testing.T) {
	f := cnf.New(0)
	out := WriteString(f, "")
	g, err := ReadString(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != 0 || g.NumClauses() != 0 {
		t.Errorf("empty formula round trip: %v", g)
	}
}
