package dimacs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// WriteSolution emits a SAT-competition-style solution:
//
//	s SATISFIABLE            (or UNSATISFIABLE / UNKNOWN)
//	v 1 -2 3 0               (value lines, when satisfiable)
//
// status must be one of "SATISFIABLE", "UNSATISFIABLE", "UNKNOWN".
// For SATISFIABLE, model supplies the literal values; unassigned
// variables are emitted as negative (false) to keep the certificate
// total, matching solver conventions.
func WriteSolution(w io.Writer, status string, model cnf.Assignment) error {
	switch status {
	case "SATISFIABLE", "UNSATISFIABLE", "UNKNOWN":
	default:
		return fmt.Errorf("dimacs: invalid solution status %q", status)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "s %s\n", status); err != nil {
		return err
	}
	if status == "SATISFIABLE" {
		if model == nil {
			return fmt.Errorf("dimacs: SATISFIABLE solution requires a model")
		}
		const perLine = 20
		count := 0
		for v := 1; v < len(model); v++ {
			if count%perLine == 0 {
				if count > 0 {
					if _, err := fmt.Fprintln(bw); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprint(bw, "v"); err != nil {
					return err
				}
			}
			lit := -v
			if model[v] == cnf.True {
				lit = v
			}
			if _, err := fmt.Fprintf(bw, " %d", lit); err != nil {
				return err
			}
			count++
		}
		if count%perLine != 0 || count > 0 {
			if _, err := fmt.Fprint(bw, " 0\n"); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintln(bw, "v 0"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSolution parses a SAT-competition solution document, returning the
// status line and, for SATISFIABLE, the assignment. Variables outside
// the value lines remain Unassigned.
func ReadSolution(r io.Reader) (status string, model cnf.Assignment, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var lits []int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || strings.HasPrefix(text, "c"):
		case strings.HasPrefix(text, "s "):
			if status != "" {
				return "", nil, &ParseError{line, "duplicate status line"}
			}
			status = strings.TrimSpace(text[2:])
		case strings.HasPrefix(text, "v"):
			for _, tok := range strings.Fields(text[1:]) {
				x, err := strconv.Atoi(tok)
				if err != nil {
					return "", nil, &ParseError{line, fmt.Sprintf("bad value literal %q", tok)}
				}
				if x != 0 {
					lits = append(lits, x)
				}
			}
		default:
			return "", nil, &ParseError{line, fmt.Sprintf("unrecognized line %q", text)}
		}
	}
	if err := sc.Err(); err != nil {
		return "", nil, err
	}
	if status == "" {
		return "", nil, &ParseError{line, "missing status line"}
	}
	if status != "SATISFIABLE" {
		return status, nil, nil
	}
	maxVar := 0
	for _, x := range lits {
		v := x
		if v < 0 {
			v = -v
		}
		if v > maxVar {
			maxVar = v
		}
	}
	model = cnf.NewAssignment(maxVar)
	for _, x := range lits {
		if x > 0 {
			model.Set(cnf.Var(x), cnf.True)
		} else {
			model.Set(cnf.Var(-x), cnf.False)
		}
	}
	return status, model, nil
}
