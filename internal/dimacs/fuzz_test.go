package dimacs

import (
	"testing"
)

// FuzzReadWriteRoundTrip feeds arbitrary documents to the tolerant
// reader and asserts the writer/reader pair is a fixed point: any
// document the reader accepts must re-read from its canonical written
// form as the identical formula. The seed corpus covers the dialect
// variations the reader is documented to tolerate (multi-clause lines,
// clauses spanning lines, missing trailing 0, comments, SATLIB
// trailers, declared empty clauses).
func FuzzReadWriteRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"p cnf 3 2\n1 -2 3 0\n-1 2 0\n",
		"c comment\np cnf 2 2\n1 2 0 -1 -2 0\n",
		"p cnf 3 1\n1\n2\n-3 0\n",
		"p cnf 2 1\n1 2\n",
		"p cnf 3 2\n1 2 0\n-3 1 0\n%\n0\n",
		"p cnf 1 1\n0\n",
		"p cnf 2 3\n1 0\n0\n-2 0\n",
		"p cnf 10 1\n1 -2 0\n",
		"p cnf 0 0\n",
		"c only\nc comments\np cnf 1 1\n-1 0\n%\ntrailing junk 1 2 3\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		parsed, err := ReadString(doc)
		if err != nil {
			return // rejected inputs are out of scope; the reader must only not panic
		}
		out := WriteString(parsed, "")
		reparsed, err := ReadString(out)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput: %q\ncanonical: %q", err, doc, out)
		}
		if parsed.NumVars != reparsed.NumVars {
			t.Fatalf("NumVars %d -> %d after round trip\ninput: %q", parsed.NumVars, reparsed.NumVars, doc)
		}
		if parsed.NumClauses() != reparsed.NumClauses() {
			t.Fatalf("clauses %d -> %d after round trip\ninput: %q", parsed.NumClauses(), reparsed.NumClauses(), doc)
		}
		for i := range parsed.Clauses {
			a, b := parsed.Clauses[i], reparsed.Clauses[i]
			if len(a) != len(b) {
				t.Fatalf("clause %d length %d -> %d\ninput: %q", i, len(a), len(b), doc)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("clause %d literal %d: %v -> %v\ninput: %q", i, j, a[j], b[j], doc)
				}
			}
		}
	})
}
