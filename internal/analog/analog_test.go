package analog

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/hyperspace"
	"repro/internal/noise"
)

func TestBasicBlocks(t *testing.T) {
	nl := NewNetlist()
	c1 := nl.Add(&ConstBlock{V: 2})
	c2 := nl.Add(&ConstBlock{V: 3})
	sum := nl.Add(Adder{}, c1, c2)
	prod := nl.Add(Multiplier{}, c1, c2, sum)
	gain := nl.Add(Gain{K: -0.5}, prod)
	nl.Step()
	if nl.Value(sum) != 5 {
		t.Errorf("adder = %v, want 5", nl.Value(sum))
	}
	if nl.Value(prod) != 30 {
		t.Errorf("multiplier = %v, want 30", nl.Value(prod))
	}
	if nl.Value(gain) != -15 {
		t.Errorf("gain = %v, want -15", nl.Value(gain))
	}
	if nl.Size() != 5 || nl.Steps() != 1 {
		t.Errorf("size/steps = %d/%d", nl.Size(), nl.Steps())
	}
}

func TestAddValidatesInputs(t *testing.T) {
	nl := NewNetlist()
	defer func() {
		if recover() == nil {
			t.Fatal("dangling input net must panic")
		}
	}()
	nl.Add(Adder{}, Net(3))
}

func TestLowPassConvergesToDC(t *testing.T) {
	nl := NewNetlist()
	src := nl.Add(&ConstBlock{V: 1})
	lp := nl.Add(NewLowPass(0.1), src)
	nl.Run(200)
	if math.Abs(nl.Value(lp)-1) > 1e-6 {
		t.Errorf("LPF output %v, want ~1 after settling", nl.Value(lp))
	}
}

func TestLowPassAttenuatesHighFrequency(t *testing.T) {
	// A fast sinusoid through a slow LPF: output RMS must be much
	// smaller than input RMS.
	nl := NewNetlist()
	src := nl.Add(&SineBlock{Osc: noise.NewSinusoid(100, 256)})
	lp := nl.Add(NewLowPass(0.02), src)
	var inPow, outPow float64
	for i := 0; i < 2048; i++ {
		nl.Step()
		inPow += nl.Value(src) * nl.Value(src)
		outPow += nl.Value(lp) * nl.Value(lp)
	}
	if outPow > 0.05*inPow {
		t.Errorf("LPF attenuation too weak: out/in power = %v", outPow/inPow)
	}
}

func TestCascadeSteeperThanSingle(t *testing.T) {
	mk := func(b Block) float64 {
		nl := NewNetlist()
		src := nl.Add(&SineBlock{Osc: noise.NewSinusoid(32, 256)})
		out := nl.Add(b, src)
		var pow float64
		for i := 0; i < 4096; i++ {
			nl.Step()
			pow += nl.Value(out) * nl.Value(out)
		}
		return pow
	}
	single := mk(NewLowPass(0.05))
	cascade := mk(NewCascadedLowPass(4, 0.05))
	if cascade >= single {
		t.Errorf("4-pole cascade (%v) should attenuate more than 1-pole (%v)", cascade, single)
	}
}

func TestLowPassPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v: expected panic", a)
				}
			}()
			NewLowPass(a)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("cascade k=0: expected panic")
		}
	}()
	NewCascadedLowPass(0, 0.5)
}

func TestCorrelatorTracksMean(t *testing.T) {
	nl := NewNetlist()
	src := nl.Add(&NoiseBlock{Src: noise.NewSource(noise.UniformUnit, 1, 0)})
	shifted := nl.Add(Adder{}, src, nl.Add(&ConstBlock{V: 0.7}))
	corr := &Correlator{}
	nl.Add(corr, shifted)
	nl.Run(100000)
	if math.Abs(corr.Mean()-0.7) > 0.02 {
		t.Errorf("correlator mean = %v, want ~0.7", corr.Mean())
	}
	if corr.Count() != 100000 {
		t.Errorf("count = %d", corr.Count())
	}
	if corr.ZScore() < 10 {
		t.Errorf("z-score = %v, want large", corr.ZScore())
	}
}

func TestCompileDecidesPaperInstances(t *testing.T) {
	// E8: the compiled hardware engine reproduces the SAT/UNSAT
	// decisions on the Section IV instances.
	for _, tc := range []struct {
		name string
		f    func() (sat bool, e *Engine)
	}{
		{"Example6", func() (bool, *Engine) {
			e, err := Compile(gen.PaperExample6(), noise.UniformUnit, 11)
			if err != nil {
				t.Fatal(err)
			}
			return true, e
		}},
		{"Example7", func() (bool, *Engine) {
			e, err := Compile(gen.PaperExample7(), noise.UniformUnit, 12)
			if err != nil {
				t.Fatal(err)
			}
			return false, e
		}},
	} {
		want, eng := tc.f()
		r := eng.Check(400_000, 4)
		if r.Satisfiable != want {
			t.Errorf("%s: hardware engine says %v, want %v (%+v)", tc.name, r.Satisfiable, want, r)
		}
	}
}

func TestCompiledEngineMatchesMathEngine(t *testing.T) {
	// The compiled netlist must produce numerically identical S_N samples
	// to the hyperspace evaluator when driven by the same seed.
	f := gen.PaperSAT()
	eng, err := Compile(f, noise.UniformHalf, 99)
	if err != nil {
		t.Fatal(err)
	}
	bank := noise.NewBank(noise.UniformHalf, 99, f.NumVars, f.NumClauses())
	ev := hyperspace.New(f, bank)
	for step := 0; step < 200; step++ {
		eng.Net.Step()
		want := ev.Step()
		if math.Abs(eng.Net.Value(eng.SN)-want.S) > 1e-12 {
			t.Fatalf("step %d: netlist S_N = %v, evaluator = %v",
				step, eng.Net.Value(eng.SN), want.S)
		}
		if math.Abs(eng.Net.Value(eng.Tau)-want.Tau) > 1e-12 {
			t.Fatalf("step %d: tau mismatch", step)
		}
		if math.Abs(eng.Net.Value(eng.Sigma)-want.Sigma) > 1e-12 {
			t.Fatalf("step %d: sigma mismatch", step)
		}
	}
}

func TestCompileComponentBudget(t *testing.T) {
	// The paper's realizability argument rests on linear component
	// counts: 2nm sources, n + nm + m adders, and one multiplier per
	// literal plus trees.
	f := gen.PaperExample6() // n=2, m=2, 4 literals
	eng, err := Compile(f, noise.UniformHalf, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := eng.Blocks
	if b.NoiseSources != 8 {
		t.Errorf("noise sources = %d, want 2nm = 8", b.NoiseSources)
	}
	// Adders: n (tau factors) + nm (clause factors) + m (Z_j) = 2+4+2.
	if b.Adders != 8 {
		t.Errorf("adders = %d, want 8", b.Adders)
	}
	if b.Correlators != 1 {
		t.Errorf("correlators = %d, want 1", b.Correlators)
	}
	if b.String() == "" {
		t.Error("empty component summary")
	}
}

func TestCompileRejectsDegenerate(t *testing.T) {
	if _, err := Compile(gen.PaperExample6(), noise.UniformHalf, 1); err != nil {
		t.Fatalf("valid formula rejected: %v", err)
	}
	bad := gen.PaperExample6().Clone()
	bad.Clauses[0] = nil
	if _, err := Compile(bad, noise.UniformHalf, 1); err == nil {
		t.Error("empty clause accepted")
	}
	empty := gen.PaperExample6().Clone()
	empty.Clauses = nil
	if _, err := Compile(empty, noise.UniformHalf, 1); err == nil {
		t.Error("clause-free formula accepted")
	}
}
