package analog

import (
	"context"
	"fmt"

	"repro/internal/cnf"
	"repro/internal/noise"
)

// Engine is a compiled hardware NBL-SAT engine: a netlist realizing
// tau_N, Sigma_N, their product S_N, and a correlator reading out its
// mean, built exclusively from the component inventory of Section V
// (noise sources, adders, multipliers, correlator).
type Engine struct {
	Net *Netlist
	// SN is the net carrying S_N(t).
	SN Net
	// Tau and Sigma expose the intermediate superpositions.
	Tau, Sigma Net
	// Corr is the correlator block reading the mean of SN.
	Corr *Correlator
	// Blocks counts component usage by kind, for the paper's
	// "imminently realizable with existing technology" resource claim.
	Blocks ComponentCount
}

// ComponentCount tallies the analog bill of materials.
type ComponentCount struct {
	NoiseSources int
	Adders       int
	Multipliers  int
	Correlators  int
}

func (c ComponentCount) String() string {
	return fmt.Sprintf("%d noise sources, %d adders, %d multipliers, %d correlators",
		c.NoiseSources, c.Adders, c.Multipliers, c.Correlators)
}

// Compile lowers a CNF instance to a hardware engine netlist drawing
// from 2·n·m independent noise sources of the given family.
//
// Structure (mirroring Section III-C with Section V components):
//
//	pos[i][j], neg[i][j]           2nm noise source blocks
//	prodPos[i] = prod_j pos[i][j]  n multiplier trees (tau branch)
//	prodNeg[i] = prod_j neg[i][j]  n multiplier trees
//	tau = prod_i (prodPos[i] + prodNeg[i])   n adders + 1 multiplier
//	g[i][j] = pos[i][j] + neg[i][j]          nm adders (clause factors)
//	T^j_l = lit * prod_{k != i} g[k][j]      one multiplier per literal
//	Z_j = sum_l T^j_l                        m adders
//	Sigma = prod_j Z_j                       1 multiplier
//	S_N = tau * Sigma -> correlator
func Compile(f *cnf.Formula, fam noise.Family, seed uint64) (*Engine, error) {
	// Stream keys match the noise.Bank layout so the compiled engine
	// samples the same processes as the mathematical engine.
	return compile(f, func(sourceIdx int) Block {
		return &NoiseBlock{Src: noise.NewSource(fam, seed, uint64(sourceIdx))}
	})
}

// maxSBLSources caps the sinusoid compile so one full common period
// (2·4^(2nm) timesteps) remains simulable.
const maxSBLSources = 12

// CompileSBL compiles the instance to the same Section V netlist but
// with on-chip sinusoidal oscillator blocks as carriers, at the
// collision-free geometric frequency plan of the sbl package (source k
// oscillates at 4^k cycles per common period). Running the engine for
// exactly the returned period makes the correlator's mean equal the
// weighted model count K' deterministically.
func CompileSBL(f *cnf.Formula) (*Engine, int64, error) {
	k := 2 * f.NumVars * f.NumClauses()
	if k > maxSBLSources {
		return nil, 0, fmt.Errorf("analog: SBL compile supports 2nm <= %d sources, need %d",
			maxSBLSources, k)
	}
	period := int64(2)
	for i := 0; i < k; i++ {
		period *= 4
	}
	eng, err := compile(f, func(sourceIdx int) Block {
		cycles := 1
		for i := 0; i < sourceIdx; i++ {
			cycles *= 4
		}
		return &SineBlock{Osc: noise.NewSinusoid(cycles, int(period))}
	})
	if err != nil {
		return nil, 0, err
	}
	return eng, period, nil
}

// compile lowers the CNF to the block netlist, drawing carrier blocks
// from mkSource (indexed (var*m+clause)*2 + polarity, the bank layout).
func compile(f *cnf.Formula, mkSource func(sourceIdx int) Block) (*Engine, error) {
	n, m := f.NumVars, f.NumClauses()
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("analog: compile needs n >= 1 and m >= 1, got (%d,%d)", n, m)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	for j, c := range f.Clauses {
		if len(c) == 0 {
			return nil, fmt.Errorf("analog: clause %d is empty", j)
		}
	}

	eng := &Engine{Net: NewNetlist()}
	nl := eng.Net

	pos := make([]Net, n*m)
	neg := make([]Net, n*m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			k := i*m + j
			pos[k] = nl.Add(mkSource(2 * k))
			neg[k] = nl.Add(mkSource(2*k + 1))
			eng.Blocks.NoiseSources += 2
		}
	}

	mul := func(ins ...Net) Net {
		eng.Blocks.Multipliers++
		return nl.Add(Multiplier{}, ins...)
	}
	add := func(ins ...Net) Net {
		eng.Blocks.Adders++
		return nl.Add(Adder{}, ins...)
	}

	// tau_N.
	tauFactors := make([]Net, n)
	for i := 0; i < n; i++ {
		rowPos := make([]Net, m)
		rowNeg := make([]Net, m)
		for j := 0; j < m; j++ {
			rowPos[j] = pos[i*m+j]
			rowNeg[j] = neg[i*m+j]
		}
		tauFactors[i] = add(mul(rowPos...), mul(rowNeg...))
	}
	eng.Tau = mul(tauFactors...)

	// Clause factor adders g[i][j] = pos + neg.
	g := make([]Net, n*m)
	for k := range g {
		g[k] = add(pos[k], neg[k])
	}

	// Sigma_N.
	zs := make([]Net, m)
	for j, c := range f.Clauses {
		ts := make([]Net, len(c))
		for li, l := range c {
			i := int(l.Var()) - 1
			lit := pos[i*m+j]
			if l.IsNeg() {
				lit = neg[i*m+j]
			}
			ins := []Net{lit}
			for k := 0; k < n; k++ {
				if k != i {
					ins = append(ins, g[k*m+j])
				}
			}
			ts[li] = mul(ins...)
		}
		zs[j] = add(ts...)
	}
	eng.Sigma = mul(zs...)

	// S_N and its correlator.
	eng.SN = mul(eng.Tau, eng.Sigma)
	eng.Corr = &Correlator{}
	nl.Add(eng.Corr, eng.SN)
	eng.Blocks.Correlators++

	return eng, nil
}

// CheckResult is the decision of a hardware-engine run.
type CheckResult struct {
	Satisfiable bool
	Mean        float64
	StdErr      float64
	Samples     int64
}

// Check runs the engine for the given number of timesteps and applies
// the same mean-above-zero decision as the mathematical engine
// (theta standard errors).
func (e *Engine) Check(steps int64, theta float64) CheckResult {
	r, _ := e.CheckCtx(context.Background(), steps, theta)
	return r
}

// CheckCtx is Check with cancellation: the simulation advances in short
// bursts, polling ctx between them, and returns the partial CheckResult
// with ctx.Err() when the context ends.
func (e *Engine) CheckCtx(ctx context.Context, steps int64, theta float64) (CheckResult, error) {
	const burst = 4096
	for done := int64(0); done < steps; {
		if err := ctx.Err(); err != nil {
			return CheckResult{
				Mean:    e.Corr.Mean(),
				StdErr:  e.Corr.StdErr(),
				Samples: e.Corr.Count(),
			}, err
		}
		run := steps - done
		if run > burst {
			run = burst
		}
		e.Net.Run(run)
		done += run
	}
	z := e.Corr.ZScore()
	return CheckResult{
		Satisfiable: z > theta,
		Mean:        e.Corr.Mean(),
		StdErr:      e.Corr.StdErr(),
		Samples:     e.Corr.Count(),
	}, nil
}
