package analog

import (
	"context"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/solver"
)

func init() {
	solver.Register("analog", func(cfg solver.Config) solver.Solver {
		return solver.Func(func(ctx context.Context, f *cnf.Formula) (solver.Result, error) {
			if cfg.FindModel {
				return solver.Result{}, solver.ErrNoModelRecovery("analog")
			}
			fam, err := core.ParseFamily(cfg.Family)
			if err != nil {
				return solver.Result{}, err
			}
			eng, err := Compile(f, fam, cfg.Seed)
			if err != nil {
				return solver.Result{}, err
			}
			r, err := eng.CheckCtx(ctx, cfg.MaxSamples, cfg.Theta)
			out := solver.Result{
				Stats: solver.Stats{Samples: r.Samples, Mean: r.Mean, StdErr: r.StdErr},
			}
			if err != nil {
				return out, err
			}
			// The netlist computes the identical statistic to mc, so the
			// same SNR gate applies to its UNSAT claim.
			out.Status = core.CheckStatus(r.Satisfiable, f.NumVars, f.NumClauses(), r.Samples)
			return out, nil
		})
	})
}
