package analog

import (
	"math"
	"testing"

	"repro/internal/gen"
)

func TestCompileSBLExactDCOnExample7(t *testing.T) {
	// (x1)(!x1): 2nm = 4 sources, period 2·4^4 = 512. Over one full
	// period the correlator mean is exactly 0 (UNSAT).
	eng, period, err := CompileSBL(gen.PaperExample7())
	if err != nil {
		t.Fatal(err)
	}
	if period != 512 {
		t.Fatalf("period = %d, want 512", period)
	}
	eng.Net.Run(period)
	if mean := eng.Corr.Mean(); math.Abs(mean) > 1e-6 {
		t.Errorf("full-period DC = %v, want ~0", mean)
	}
}

func TestCompileSBLExactDCOnTinySAT(t *testing.T) {
	// (x1) over one variable: 2nm = 2, period 2·4^2 = 32. K' = 1, so the
	// full-period DC reads exactly 1.
	f := gen.PaperExample7().Clone()
	f.Clauses = f.Clauses[:1] // keep only (x1)
	eng, period, err := CompileSBL(f)
	if err != nil {
		t.Fatal(err)
	}
	eng.Net.Run(period)
	if mean := eng.Corr.Mean(); math.Abs(mean-1) > 1e-9 {
		t.Errorf("full-period DC = %v, want exactly 1", mean)
	}
}

func TestCompileSBLRejectsOversized(t *testing.T) {
	// Example 6 has 2nm = 8 <= 12: accepted. The Figure 1 instances have
	// 2nm = 16: rejected.
	if _, _, err := CompileSBL(gen.PaperExample6()); err != nil {
		t.Errorf("Example 6 should compile: %v", err)
	}
	if _, _, err := CompileSBL(gen.PaperSAT()); err == nil {
		t.Error("oversized SBL compile accepted")
	}
}
