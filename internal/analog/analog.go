// Package analog is a discrete-time block-diagram simulator for the
// hardware NBL-SAT engine sketched in Section V of the paper: "a
// plurality of adders (implementing configurable clauses), multipliers
// (implementing the conjunction operation among the clauses), and noise
// sources ... [and] an on-chip correlator block".
//
// Blocks are evaluated once per timestep in netlist order (a block's
// inputs must be created before it, so insertion order is a topological
// order). Sources have no inputs; filters and correlators carry state
// across steps. The compiler in compile.go lowers a CNF instance to a
// netlist of these blocks, which is experiment E8's end-to-end check
// that the paper's proposed architecture computes the same decision
// statistic as the mathematical engine.
package analog

import (
	"fmt"
	"math"

	"repro/internal/noise"
	"repro/internal/stats"
)

// Block is one circuit element. Step receives the current values of its
// input nets and returns its output value for this timestep.
type Block interface {
	Step(in []float64) float64
}

// Net identifies a block output within a netlist.
type Net int

// Netlist is a wired collection of blocks.
type Netlist struct {
	blocks []Block
	inputs [][]Net
	values []float64
	step   int64
}

// NewNetlist returns an empty netlist.
func NewNetlist() *Netlist { return &Netlist{} }

// Add inserts a block whose inputs are the given nets and returns the
// block's output net. Inputs must already exist.
func (n *Netlist) Add(b Block, inputs ...Net) Net {
	for _, in := range inputs {
		if int(in) < 0 || int(in) >= len(n.blocks) {
			panic(fmt.Sprintf("analog: input net %d does not exist", in))
		}
	}
	n.blocks = append(n.blocks, b)
	n.inputs = append(n.inputs, inputs)
	n.values = append(n.values, 0)
	return Net(len(n.blocks) - 1)
}

// Size returns the number of blocks.
func (n *Netlist) Size() int { return len(n.blocks) }

// Value returns the current output value of a net.
func (n *Netlist) Value(net Net) float64 { return n.values[net] }

// Steps returns the number of timesteps simulated so far.
func (n *Netlist) Steps() int64 { return n.step }

// Step advances the simulation one timestep.
func (n *Netlist) Step() {
	scratch := make([]float64, 0, 8)
	for i, b := range n.blocks {
		scratch = scratch[:0]
		for _, in := range n.inputs[i] {
			scratch = append(scratch, n.values[in])
		}
		n.values[i] = b.Step(scratch)
	}
	n.step++
}

// Run advances the simulation by steps timesteps.
func (n *Netlist) Run(steps int64) {
	for i := int64(0); i < steps; i++ {
		n.Step()
	}
}

// NoiseBlock emits samples from a noise source.
type NoiseBlock struct{ Src noise.Source }

// Step implements Block.
func (b *NoiseBlock) Step([]float64) float64 { return b.Src.Next() }

// SineBlock emits a unit-RMS sinusoid (an on-chip oscillator).
type SineBlock struct {
	Osc *noise.Sinusoid
}

// Step implements Block.
func (b *SineBlock) Step([]float64) float64 { return b.Osc.Next() }

// ConstBlock emits a constant.
type ConstBlock struct{ V float64 }

// Step implements Block.
func (b *ConstBlock) Step([]float64) float64 { return b.V }

// Adder sums its inputs (an ideal analog summing junction).
type Adder struct{}

// Step implements Block.
func (Adder) Step(in []float64) float64 {
	s := 0.0
	for _, x := range in {
		s += x
	}
	return s
}

// Multiplier multiplies its inputs (an ideal analog mixer).
type Multiplier struct{}

// Step implements Block.
func (Multiplier) Step(in []float64) float64 {
	p := 1.0
	for _, x := range in {
		p *= x
	}
	return p
}

// Gain scales its single input by K (a wideband amplifier).
type Gain struct{ K float64 }

// Step implements Block.
func (g Gain) Step(in []float64) float64 { return g.K * in[0] }

// LowPass is a first-order IIR low-pass filter
// y[t] = y[t-1] + alpha·(x[t] - y[t-1]) with alpha in (0, 1].
type LowPass struct {
	Alpha float64
	y     float64
}

// NewLowPass returns a first-order low-pass with the given smoothing
// factor. Smaller alpha means a lower cutoff.
func NewLowPass(alpha float64) *LowPass {
	if alpha <= 0 || alpha > 1 {
		panic("analog: LowPass alpha must be in (0,1]")
	}
	return &LowPass{Alpha: alpha}
}

// Step implements Block.
func (f *LowPass) Step(in []float64) float64 {
	f.y += f.Alpha * (in[0] - f.y)
	return f.y
}

// CascadedLowPass chains k identical first-order sections, giving a
// steeper (k-pole) roll-off — the "low-pass filters of high order"
// Section V says a small frequency spacing would require.
type CascadedLowPass struct {
	sections []*LowPass
}

// NewCascadedLowPass builds a k-section cascade with per-section alpha.
func NewCascadedLowPass(k int, alpha float64) *CascadedLowPass {
	if k < 1 {
		panic("analog: cascade needs at least one section")
	}
	c := &CascadedLowPass{}
	for i := 0; i < k; i++ {
		c.sections = append(c.sections, NewLowPass(alpha))
	}
	return c
}

// Step implements Block.
func (c *CascadedLowPass) Step(in []float64) float64 {
	x := in[0]
	buf := [1]float64{}
	for _, s := range c.sections {
		buf[0] = x
		x = s.Step(buf[:])
	}
	return x
}

// Correlator accumulates the running mean and variance of its input —
// the paper's on-chip correlator that reads out the DC component of S_N.
type Correlator struct {
	w stats.Welford
}

// Step implements Block; the output is the running mean.
func (c *Correlator) Step(in []float64) float64 {
	c.w.Add(in[0])
	return c.w.Mean()
}

// Mean returns the accumulated mean.
func (c *Correlator) Mean() float64 { return c.w.Mean() }

// StdErr returns the standard error of the mean.
func (c *Correlator) StdErr() float64 { return c.w.StdErr() }

// Count returns the number of accumulated samples.
func (c *Correlator) Count() int64 { return c.w.Count() }

// ZScore returns Mean/StdErr (0 when undefined).
func (c *Correlator) ZScore() float64 {
	se := c.w.StdErr()
	if se == 0 || math.IsInf(se, 0) {
		return 0
	}
	return c.w.Mean() / se
}
