// Package pipeline makes preprocessing and decomposition first-class
// members of the engine registry instead of a CLI afterthought: the
// "pre" meta-engine — reachable as "pre(<engine>)" through
// solver.New — runs the full solve pipeline
//
//	Simplify -> short-circuit -> Decompose -> fan out -> merge
//
// around any wrapped engine.
//
// Why a pipeline matters here more than in a classical solver: the
// Monte-Carlo NBL engine's signal-to-noise ratio collapses as 4^(n·m)
// (Section III-F of the paper), so it can only decide instances with a
// tiny variables×clauses product. Preprocessing (unit propagation, pure
// literals, subsumption, strengthening, bounded variable elimination)
// shrinks n·m directly, and connected-component decomposition replaces
// one n·m with the per-component products — a variable-disjoint union
// of k small subformulas costs the NBL engine max_i(n_i·m_i), not
// (Σn_i)(Σm_i). Both reductions happen before any noise is drawn.
//
// The pipeline stages:
//
//  1. Simplify proves equisatisfiable reductions. If it derives the
//     empty clause the answer is UNSAT with zero samples; if it
//     eliminates every clause the answer is SAT and Reconstruct
//     produces a model from the forced values alone.
//  2. Decompose splits the reduced formula into variable-disjoint
//     components by union-find over clauses.
//  3. Every component is solved concurrently by a fresh instance of the
//     wrapped engine, all sharing the caller's context (and therefore
//     its deadline budget). The first UNSAT component cancels the rest:
//     the conjunction is already decided.
//  4. Verdicts merge: any UNSAT -> UNSAT; otherwise any UNKNOWN (or
//     error) -> UNKNOWN; otherwise SAT, with the component models
//     lifted through Component.Lift and simplify.Reconstruct back to
//     the input variable space when every component produced one.
//
// Result.Stats carries the reduction trail: NMBefore/NMAfter bracket
// the preprocessing, Components counts the fan-out, and the wrapped
// engines' effort counters are summed.
package pipeline

import (
	"context"
	"fmt"
	"math/big"
	"strconv"
	"sync"

	"repro/internal/cnf"
	"repro/internal/enginepool"
	"repro/internal/obs"
	"repro/internal/simplify"
	"repro/internal/solver"
)

func init() {
	solver.RegisterMeta("pre", func(inner string, cfg solver.Config) (solver.Solver, error) {
		return New(inner, cfg)
	})
	// The shell holds no geometry-sized state (Reset is always warm);
	// the lease pool keys it geometry-free.
	solver.MarkStateless("pre")
	// The pipeline is count-safe (solveCount/solveWeighted pick
	// count-preserving stages), so pre(count) and pre(wcount) work;
	// NewWith intersects this list with the inner engine's own tasks.
	solver.RegisterTasks("pre", solver.TaskDecide, solver.TaskCount, solver.TaskWeightedCount)
}

// Pipeline is the preprocess-and-decompose meta-engine around one inner
// engine expression. Construct with New or via
// solver.New("pre(<engine>)").
type Pipeline struct {
	inner string
	cfg   solver.Config
	// Simplify selects the preprocessing passes (zero value: all).
	Simplify simplify.Options
}

// New validates the inner engine expression and returns the pipeline.
// Every component solve leases its inner engine from the shared engine
// pool (enginepool.Default): leases are exclusive, so stateful engines
// never share between concurrent components, while components of a
// repeated geometry — across solves, or across requests in a resident
// service — reuse warm instances instead of rebuilding noise banks.
func New(inner string, cfg solver.Config) (*Pipeline, error) {
	if inner == "" {
		return nil, fmt.Errorf("pipeline: pre() needs an inner engine, e.g. pre(mc)")
	}
	// Fail at construction, not first Solve, on an unknown inner name.
	if _, err := solver.NewWith(inner, cfg); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	return &Pipeline{inner: inner, cfg: cfg}, nil
}

// Reset implements solver.Reusable. The pipeline itself holds no
// per-formula state — its warmth lives in the inner engines it leases
// from the pool — so any instance is reusable as-is for any formula.
func (p *Pipeline) Reset(f *cnf.Formula) bool { return true }

// Solve implements solver.Solver, dispatching on the configured task:
// counting tasks take count-preserving variants of the pipeline, decide
// takes the full reduction.
func (p *Pipeline) Solve(ctx context.Context, f *cnf.Formula) (solver.Result, error) {
	switch p.cfg.Task {
	case solver.TaskCount:
		return p.solveCount(ctx, f)
	case solver.TaskWeightedCount:
		return p.solveWeighted(ctx, f)
	}
	return p.solveDecide(ctx, f)
}

// runSimplify is Simplify with its span: nm before/after and the BVE
// elimination count ride as attrs, so a trace shows exactly how much
// of the 4^(n·m) exponent preprocessing bought before any noise was
// drawn.
func runSimplify(ctx context.Context, f *cnf.Formula, opts simplify.Options) *simplify.Result {
	sp, _ := obs.StartSpan(ctx, "pipeline.simplify")
	pre := simplify.Simplify(f, opts)
	if sp != nil {
		sp.SetAttr("nm_before", strconv.Itoa(pre.Stats.NMBefore()))
		sp.SetAttr("nm_after", strconv.Itoa(pre.Stats.NMAfter()))
		sp.SetAttr("bve_eliminated", strconv.Itoa(pre.Stats.VarsEliminated))
		sp.Finish()
	}
	return pre
}

// runDecompose is Decompose with its span (component count as attr).
func runDecompose(ctx context.Context, f *cnf.Formula) []*simplify.Component {
	sp, _ := obs.StartSpan(ctx, "pipeline.decompose")
	comps := simplify.Decompose(f)
	if sp != nil {
		sp.SetAttr("components", strconv.Itoa(len(comps)))
		sp.Finish()
	}
	return comps
}

// solveDecide is the original decide pipeline: full Simplify,
// short-circuits, Decompose, fan out, merge verdicts.
func (p *Pipeline) solveDecide(ctx context.Context, f *cnf.Formula) (solver.Result, error) {
	pre := runSimplify(ctx, f, p.Simplify)
	out := solver.Result{Stats: solver.Stats{
		NMBefore: int64(pre.Stats.NMBefore()),
		NMAfter:  int64(pre.Stats.NMAfter()),
	}}

	if pre.ProvedUnsat {
		out.Status = solver.StatusUnsat
		return out, nil
	}
	if pre.F.NumClauses() == 0 {
		// Everything was forced or freed: any completion of the forced
		// values is a model.
		out.Status = solver.StatusSat
		out.Assignment = pre.Reconstruct(cnf.NewAssignment(pre.F.NumVars))
		return out, nil
	}

	comps := runDecompose(ctx, pre.F)
	out.Stats.Components = int64(len(comps))
	for _, c := range comps {
		for _, cl := range c.F.Clauses {
			if len(cl) == 0 {
				// Defensive: Simplify leaves no empty clauses, but a
				// caller-supplied Simplify option set might.
				out.Status = solver.StatusUnsat
				return out, nil
			}
		}
	}

	results, compCtx, cancel, err := p.fanOut(ctx, comps)
	if err != nil {
		return out, err
	}
	defer cancel()

	// Merge. Stats counters sum across components; the first sampling
	// statistic seen survives (component statistics are per-subformula
	// and cannot be combined).
	var (
		unsat    bool
		unknown  bool
		firstErr error
	)
	model := cnf.NewAssignment(pre.F.NumVars)
	haveModels := true
	for i, o := range results {
		if out.Stats.StdErr == 0 && o.r.Stats.StdErr != 0 {
			out.Stats.Mean, out.Stats.StdErr = o.r.Stats.Mean, o.r.Stats.StdErr
		}
		out.Stats.Add(o.r.Stats)
		switch {
		case o.err == nil && o.r.Status == solver.StatusUnsat:
			unsat = true
		case o.err == nil && o.r.Status == solver.StatusSat:
			if o.r.Assignment != nil {
				comps[i].Lift(o.r.Assignment, model)
			} else {
				haveModels = false
			}
		case o.err == nil:
			unknown = true
		case compCtx.Err() != nil && ctx.Err() == nil:
			// Cancelled loser of a decided conjunction, not a failure.
			unknown = true
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("pipeline %s component %d/%d: %w",
					p.inner, i+1, len(comps), o.err)
			}
		}
	}

	switch {
	case unsat:
		out.Status = solver.StatusUnsat
		return out, nil
	case ctx.Err() != nil:
		return out, ctx.Err()
	case firstErr != nil:
		return out, firstErr
	case unknown:
		out.Status = solver.StatusUnknown
		return out, nil
	}
	out.Status = solver.StatusSat
	if haveModels {
		out.Assignment = pre.Reconstruct(model)
	}
	return out, nil
}

// slot is one component's outcome in a fan-out.
type slot struct {
	r   solver.Result
	err error
}

// fanOut solves every component concurrently on inner engines leased
// from the shared pool, all under one derived context. Leases are
// exclusive for the duration of the component solve and released as
// each component finishes, so same-geometry components warm each other
// across solves. One UNSAT component decides the conjunction — for
// counting inner engines UNSAT is exactly a zero count, which zeroes
// the product — so it cancels the rest through the derived context.
//
// The caller must defer the returned cancel, and must do so only after
// merging: the merge distinguishes a cancelled loser from a real error
// by compCtx.Err(), so cancelling before the merge would misread every
// error as a loser.
func (p *Pipeline) fanOut(ctx context.Context, comps []*simplify.Component) ([]slot, context.Context, context.CancelFunc, error) {
	compCtx, cancel := context.WithCancel(ctx)
	results := make([]slot, len(comps))
	var wg sync.WaitGroup
	for i, comp := range comps {
		lease, err := enginepool.Default.Acquire(p.inner, p.cfg, comp.F)
		if err != nil {
			cancel()
			wg.Wait()
			return nil, nil, nil, err
		}
		wg.Add(1)
		go func(i int, comp *simplify.Component, lease *enginepool.Lease) {
			defer wg.Done()
			// One span per component: its geometry and lease warmth are
			// the trace's answer to "which component was the straggler,
			// and did it pay a cold engine build on top".
			sp, solveCtx := obs.StartSpan(compCtx, "pipeline.component")
			if sp != nil {
				sp.SetAttr("component", strconv.Itoa(i))
				sp.SetAttr("vars", strconv.Itoa(comp.F.NumVars))
				sp.SetAttr("clauses", strconv.Itoa(comp.F.NumClauses()))
				sp.SetAttr("warm", strconv.FormatBool(lease.Warm()))
			}
			r, err := lease.Solve(solveCtx)
			lease.Release()
			if sp != nil {
				sp.SetAttr("status", r.Status.String())
				sp.Finish()
			}
			results[i] = slot{r, err}
			if err == nil && r.Status == solver.StatusUnsat {
				cancel()
			}
		}(i, comp, lease)
	}
	wg.Wait()
	return results, compCtx, cancel, nil
}

// solveCount is the counting pipeline. It keeps only the
// count-preserving reductions: unit propagation (a forced variable has
// exactly one value in every model, so it contributes a factor of 1),
// subsumption and self-subsuming strengthening (both
// logical-equivalence transformations). Pure-literal elimination and
// bounded variable elimination are forced off — both preserve only
// satisfiability, not the number of models (a pure literal's variable
// still takes two values in models where its clauses are otherwise
// satisfied). Variables that end up in no clause — free — contribute a
// factor of 2 each, and component counts multiply because components
// share no variables.
func (p *Pipeline) solveCount(ctx context.Context, f *cnf.Formula) (solver.Result, error) {
	opts := p.Simplify
	opts.DisablePure = true
	opts.DisableBVE = true
	pre := runSimplify(ctx, f, opts)
	out := solver.Result{Stats: solver.Stats{
		NMBefore: int64(pre.Stats.NMBefore()),
		NMAfter:  int64(pre.Stats.NMAfter()),
	}}

	if pre.ProvedUnsat {
		out.Status = solver.StatusUnsat
		out.Count = new(big.Int)
		return out, nil
	}

	// Every original variable is exactly one of: forced (factor 1),
	// surviving in pre.F (counted by the engines below), or free
	// (factor 2). BVE is off, so there is no fourth, eliminated kind.
	forced := 0
	for v := cnf.Var(1); int(v) <= f.NumVars; v++ {
		if pre.Forced.Get(v) != cnf.Unassigned {
			forced++
		}
	}
	free := f.NumVars - forced - pre.F.NumVars
	count := new(big.Int).Lsh(big.NewInt(1), uint(free))

	if pre.F.NumClauses() == 0 {
		// Everything was forced or freed: the forced prefix admits
		// exactly the 2^free completions already accumulated.
		out.Status = solver.StatusSat
		out.Count = count
		return out, nil
	}

	comps := runDecompose(ctx, pre.F)
	out.Stats.Components = int64(len(comps))
	for _, c := range comps {
		for _, cl := range c.F.Clauses {
			if len(cl) == 0 {
				// Defensive: Simplify leaves no empty clauses, but a
				// caller-supplied Simplify option set might.
				out.Status = solver.StatusUnsat
				out.Count = new(big.Int)
				return out, nil
			}
		}
	}
	return p.mergeCounts(ctx, out, comps, count)
}

// solveWeighted is the weighted-counting (K') pipeline. It must not
// Simplify at all: K' weights each model by the product over clauses of
// the number of satisfied literals, so even unit propagation changes
// the answer — for f = (x)·(x+y), K' = 3 (the model x=y=1 satisfies
// the second clause twice), but propagating the unit first leaves (y)
// free-standing with K' = 2·1. Decomposition alone is K'-safe: it
// renames variables without touching clause contents, and weights
// factor over variable-disjoint components. Free variables contribute
// ×2 each (they satisfy nothing, with two completions per model).
func (p *Pipeline) solveWeighted(ctx context.Context, f *cnf.Formula) (solver.Result, error) {
	nm := int64(f.NumVars) * int64(f.NumClauses())
	out := solver.Result{Stats: solver.Stats{NMBefore: nm, NMAfter: nm}}

	for _, cl := range f.Clauses {
		if len(cl) == 0 {
			out.Status = solver.StatusUnsat
			out.Count = new(big.Int)
			return out, nil
		}
	}
	if f.NumClauses() == 0 {
		// The empty product weights every assignment 1: K' = 2^n.
		out.Status = solver.StatusSat
		out.Count = new(big.Int).Lsh(big.NewInt(1), uint(f.NumVars))
		return out, nil
	}

	comps := runDecompose(ctx, f)
	out.Stats.Components = int64(len(comps))
	mentioned := 0
	for _, c := range comps {
		mentioned += c.F.NumVars
	}
	base := new(big.Int).Lsh(big.NewInt(1), uint(f.NumVars-mentioned))
	return p.mergeCounts(ctx, out, comps, base)
}

// mergeCounts fans the components out and multiplies their counts into
// base (which already carries the 2^free factor). Any zero-count
// (UNSAT) component zeroes the product; any unknown or cancelled-loser
// component leaves the total unknowable, so no count is reported.
func (p *Pipeline) mergeCounts(ctx context.Context, out solver.Result, comps []*simplify.Component, base *big.Int) (solver.Result, error) {
	results, compCtx, cancel, err := p.fanOut(ctx, comps)
	if err != nil {
		return out, err
	}
	defer cancel()

	var (
		unsat    bool
		unknown  bool
		firstErr error
	)
	count := base
	for i, o := range results {
		if out.Stats.StdErr == 0 && o.r.Stats.StdErr != 0 {
			out.Stats.Mean, out.Stats.StdErr = o.r.Stats.Mean, o.r.Stats.StdErr
		}
		out.Stats.Add(o.r.Stats)
		switch {
		case o.err == nil && o.r.Status == solver.StatusUnsat:
			unsat = true
		case o.err == nil && o.r.Status == solver.StatusSat:
			if o.r.Count == nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("pipeline %s component %d/%d: SAT without a count under task %s",
						p.inner, i+1, len(comps), p.cfg.Task)
				}
				continue
			}
			count.Mul(count, o.r.Count)
		case o.err == nil:
			unknown = true
		case compCtx.Err() != nil && ctx.Err() == nil:
			// Cancelled loser of an already-zeroed product, not a failure.
			unknown = true
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("pipeline %s component %d/%d: %w",
					p.inner, i+1, len(comps), o.err)
			}
		}
	}

	switch {
	case unsat:
		out.Status = solver.StatusUnsat
		out.Count = new(big.Int)
		return out, nil
	case ctx.Err() != nil:
		return out, ctx.Err()
	case firstErr != nil:
		return out, firstErr
	case unknown:
		out.Status = solver.StatusUnknown
		return out, nil
	}
	out.Status = solver.StatusSat
	out.Count = count
	return out, nil
}
