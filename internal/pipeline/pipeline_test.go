package pipeline

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/solver"

	// Real engines for the integration paths.
	_ "repro/internal/cdcl"
	_ "repro/internal/dpll"
)

// Stub engines, registered once for the whole package test binary.
var (
	stubBlockedStarted atomic.Int32
	stubUnsatSolves    atomic.Int32
)

func init() {
	// stub-block parks until its context ends — a stand-in for an
	// engine grinding on an undecidable component.
	solver.Register("stub-block", func(cfg solver.Config) solver.Solver {
		return solver.Func(func(ctx context.Context, f *cnf.Formula) (solver.Result, error) {
			stubBlockedStarted.Add(1)
			<-ctx.Done()
			return solver.Result{}, ctx.Err()
		})
	})
	// stub-unsat2 answers UNSAT for 2-clause components and blocks on
	// everything else, so a decomposed solve only terminates if the
	// pipeline cancels siblings after the first UNSAT.
	solver.Register("stub-unsat2", func(cfg solver.Config) solver.Solver {
		return solver.Func(func(ctx context.Context, f *cnf.Formula) (solver.Result, error) {
			stubUnsatSolves.Add(1)
			if f.NumClauses() == 2 {
				return solver.Result{Status: solver.StatusUnsat}, nil
			}
			<-ctx.Done()
			return solver.Result{}, ctx.Err()
		})
	})
}

// survivingUnion returns a disjoint union of two random 3-SAT blocks
// dense enough to survive preprocessing, so the fan-out path genuinely
// runs the inner engine.
func survivingUnion() *cnf.Formula {
	return gen.DisjointUnion(
		gen.RandomKSAT(rng.New(1), 20, 91, 3),
		gen.RandomKSAT(rng.New(2), 20, 91, 3),
	)
}

func TestConstructionErrors(t *testing.T) {
	if _, err := New("", solver.Config{}); err == nil {
		t.Error("pre() with empty inner must fail")
	}
	if _, err := New("no-such-engine", solver.Config{}); err == nil {
		t.Error("pre(no-such-engine) must fail at construction")
	}
	if _, err := solver.New("pre(no-such-engine)"); err == nil {
		t.Error("registry path must surface the unknown inner engine")
	}
	if _, err := solver.New("pre(pre(cdcl))"); err != nil {
		t.Errorf("nested meta expression should parse: %v", err)
	}
}

func TestPreprocessingShortCircuits(t *testing.T) {
	// Both paper instances are fully decided by preprocessing: the
	// inner engine must never run. stub-block would park until the 5s
	// guard if it did, failing the status check.
	for _, tc := range []struct {
		f    *cnf.Formula
		want solver.Status
	}{
		{gen.PaperSAT(), solver.StatusSat},
		{gen.PaperUNSAT(), solver.StatusUnsat},
	} {
		p, err := New("stub-block", solver.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		r, err := p.Solve(ctx, tc.f)
		cancel()
		if err != nil || r.Status != tc.want {
			t.Errorf("%v: got (%v, %v), want %v", tc.f, r.Status, err, tc.want)
		}
		if r.Stats.NMBefore == 0 {
			t.Errorf("%v: NMBefore not recorded: %+v", tc.f, r.Stats)
		}
		if tc.want == solver.StatusSat && (r.Assignment == nil || !r.Assignment.Satisfies(tc.f)) {
			t.Errorf("%v: preprocessing-proved SAT must carry a model", tc.f)
		}
	}
}

func TestUnsatComponentCancelsSiblings(t *testing.T) {
	// Three components: two random blocks the stub parks on, plus a
	// 2-clause block the stub answers UNSAT. The solve only terminates
	// (well inside the 10s guard) if that UNSAT cancels the siblings.
	// Preprocessing is disabled so all three components reach the stub
	// exactly as built.
	f := gen.DisjointUnion(
		gen.RandomKSAT(rng.New(3), 20, 91, 3),
		gen.RandomKSAT(rng.New(4), 20, 91, 3),
		cnf.FromClauses([]int{1, 2, 3}, []int{-1, -2, -3}),
	)
	p, err := New("stub-unsat2", solver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.Simplify.DisableUnits = true
	p.Simplify.DisablePure = true
	p.Simplify.DisableSubsumption = true
	p.Simplify.DisableStrengthen = true
	p.Simplify.DisableBVE = true

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	r, err := p.Solve(ctx, f)
	if err != nil || r.Status != solver.StatusUnsat {
		t.Fatalf("got (%v, %v), want UNSAT from the stub component", r.Status, err)
	}
	if r.Stats.Components != 3 {
		t.Errorf("expected 3 components, got %d", r.Stats.Components)
	}
	// The siblings may never reach the stub at all: the registry
	// wrapper short-circuits once the UNSAT component's cancellation
	// lands. At least the deciding component must have run.
	if n := stubUnsatSolves.Load(); n < 1 {
		t.Errorf("expected at least the UNSAT component to reach the stub, saw %d", n)
	}
}

func TestParentCancellationPropagates(t *testing.T) {
	p, err := New("stub-block", solver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The random blocks survive preprocessing and the stub parks on
	// them until the parent context is cancelled mid-component. The
	// cancel fires only after both components are confirmed parked, so
	// the test never races preprocessing against a wall-clock deadline
	// (under -race, preprocessing alone can outlast any tight timeout).
	f := survivingUnion()
	base := stubBlockedStarted.Load()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := p.Solve(ctx, f)
		done <- err
	}()
	guard := time.After(10 * time.Second)
	for stubBlockedStarted.Load() < base+2 {
		select {
		case err := <-done:
			t.Fatalf("solve returned before both components fanned out: %v", err)
		case <-guard:
			t.Fatalf("components never reached the stub (saw %d)",
				stubBlockedStarted.Load()-base)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline ignored parent cancellation")
	}
}

func TestRealEnginesOnDecomposableUnion(t *testing.T) {
	// pre(cdcl) and pre(dpll) on a genuinely decomposed union: both
	// components survive preprocessing, get solved by the real engine,
	// and the verdict/model merge is checked against the parent.
	planted1, _ := gen.PlantedKSAT(rng.New(31), 20, 91, 3)
	planted2, _ := gen.PlantedKSAT(rng.New(32), 20, 91, 3)
	sat := gen.DisjointUnion(planted1, planted2)
	for _, inner := range []string{"cdcl", "dpll"} {
		s, err := solver.New("pre(" + inner + ")")
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Solve(context.Background(), sat)
		if err != nil || r.Status != solver.StatusSat {
			t.Fatalf("pre(%s): got (%v, %v), want SAT", inner, r.Status, err)
		}
		if r.Assignment == nil || !r.Assignment.Satisfies(sat) {
			t.Fatalf("pre(%s): model missing or wrong after component lifting", inner)
		}
		if r.Stats.Components != 2 {
			t.Errorf("pre(%s): components = %d, want 2", inner, r.Stats.Components)
		}
		if r.Engine != "pre("+inner+")" {
			t.Errorf("result engine = %q, want %q", r.Engine, "pre("+inner+")")
		}
	}
}
