// Conformance suite for the counting tasks: on every instance small
// enough to enumerate, the counting engines — bare and behind the
// pre(...) pipeline — must reproduce the brute-force model count and
// clause-cover-weighted count exactly (big.Int equality, no tolerance).
// pre(count) == bare count is the count-safety proof obligation of the
// pipeline: unit propagation, subsumption, strengthening, and component
// decomposition preserve counts; pure-literal elimination and BVE do
// not and must stay disabled under counting.
package repro

import (
	"context"
	"math/big"
	"os"
	"testing"

	"repro/internal/cnf"
	"repro/internal/count"
	"repro/internal/verdictstore"
)

// countInstances is the shared worklist: the paper instances, the
// disjoint unions that exercise component-count multiplication, and the
// committed SATLIB testdata.
func countInstances(t *testing.T) map[string]*Formula {
	t.Helper()
	instances := conformanceInstances(t)
	instances["DisjointEx6x3"] = DisjointUnion(
		PaperExample6(), PaperExample6(), PaperExample6())
	instances["DisjointSatUnsat"] = DisjointUnion(PaperSAT(), PaperUNSAT())
	for _, path := range []string{
		"testdata/paper-sat-satlib.cnf",
		"testdata/paper-unsat.cnf",
		"testdata/uf8-satlib.cnf",
		"testdata/uf8-renamed.cnf",
	} {
		file, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ReadDIMACS(file)
		file.Close()
		if err != nil {
			t.Fatal(err)
		}
		instances[path] = f
	}
	return instances
}

func TestCountConformanceWithBrute(t *testing.T) {
	for label, f := range countInstances(t) {
		brute := new(big.Int).SetUint64(count.Brute(f))
		for _, engine := range []string{"count", "pre(count)"} {
			r, err := Solve(context.Background(), engine, f, WithTask(TaskCount))
			if err != nil {
				t.Fatalf("%s %s: %v", label, engine, err)
			}
			if r.Count == nil || r.Count.Cmp(brute) != 0 {
				t.Errorf("%s: %s = %v, brute force = %v", label, engine, r.Count, brute)
			}
			if satByCount := brute.Sign() > 0; (r.Status == StatusSat) != satByCount {
				t.Errorf("%s: %s status %v disagrees with count %v", label, engine, r.Status, brute)
			}
		}
	}
}

func TestWeightedCountConformanceWithBrute(t *testing.T) {
	for label, f := range countInstances(t) {
		brute := count.WeightedBrute(f)
		for _, engine := range []string{"wcount", "pre(wcount)"} {
			r, err := Solve(context.Background(), engine, f, WithTask(TaskWeightedCount))
			if err != nil {
				t.Fatalf("%s %s: %v", label, engine, err)
			}
			if r.Count == nil || r.Count.Cmp(brute) != 0 {
				t.Errorf("%s: %s K' = %v, brute force = %v", label, engine, r.Count, brute)
			}
		}
	}
}

// TestCountEngineRejectsDecideOnlyWrapper: building a counting config
// over an engine that cannot count must fail loudly at construction,
// not return a countless SAT at solve time.
func TestCountEngineRejectsDecideOnlyWrapper(t *testing.T) {
	if _, err := New("cdcl", WithTask(TaskCount)); err == nil {
		t.Error("cdcl accepted task=count")
	}
	if _, err := New("pre(cdcl)", WithTask(TaskCount)); err == nil {
		t.Error("pre(cdcl) accepted task=count — the wrapper cannot add counting to a decide engine")
	}
	if _, err := New("pre(count)", WithTask(TaskCount)); err != nil {
		t.Errorf("pre(count) rejected its own task: %v", err)
	}
}

// TestGoldenCountRenamingInvariance pins the golden SATLIB pair: the
// uf8 instance and its committed variable renaming have the same model
// count (12), the same canonical fingerprint, and therefore the same
// task-qualified cache/store key — a count computed for one node's
// submission replays for the other across the fleet.
func TestGoldenCountRenamingInvariance(t *testing.T) {
	read := func(path string) *Formula {
		file, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer file.Close()
		f, err := ReadDIMACS(file)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	orig := read("testdata/uf8-satlib.cnf")
	renamed := read("testdata/uf8-renamed.cnf")

	want := big.NewInt(12) // golden: uf8-satlib has exactly 12 models
	for label, f := range map[string]*Formula{"uf8": orig, "uf8-renamed": renamed} {
		r, err := Solve(context.Background(), "pre(count)", f, WithTask(TaskCount))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if r.Count == nil || r.Count.Cmp(want) != 0 {
			t.Errorf("%s: count = %v, want %v", label, r.Count, want)
		}
	}

	fpOrig := cnf.Canonicalize(orig).Fingerprint()
	fpRenamed := cnf.Canonicalize(renamed).Fingerprint()
	if fpOrig != fpRenamed {
		t.Fatalf("fingerprints diverge: %s vs %s", fpOrig, fpRenamed)
	}
	cfg := Config{Task: TaskCount}
	keyOrig := verdictstore.TaskKey(string(TaskCount), "pre(count)", cfg.Key(), fpOrig)
	keyRenamed := verdictstore.TaskKey(string(TaskCount), "pre(count)", cfg.Key(), fpRenamed)
	if keyOrig != keyRenamed {
		t.Errorf("task cache keys diverge:\n%s\n%s", keyOrig, keyRenamed)
	}
	// And the counting key never collides with the decide key for the
	// same bytes.
	if decideKey := verdictstore.Key("pre(count)", Config{}.Key(), fpOrig); decideKey == keyOrig {
		t.Error("count key collides with the decide key")
	}
}
