// Conformance suite for stream contract v2: the sampling engines'
// results must be invariant to the worker count (workers claim
// disjoint sample-index chunks of the same counter-addressed streams),
// and the legacy v1 contract must stay selectable.
package repro

import (
	"context"
	"testing"
)

// TestWorkerCountNeverChangesResults pins the headline v2 guarantee at
// the registry level: for every sampling engine, workers=1 and
// workers=8 produce bit-identical verdicts and statistics. rtw and sbl
// sample single-threaded (the knob is a no-op there), so the contract
// holds trivially — asserting it anyway keeps them honest if they ever
// grow a parallel path.
func TestWorkerCountNeverChangesResults(t *testing.T) {
	for _, engine := range []string{"mc", "rtw", "sbl"} {
		t.Run(engine, func(t *testing.T) {
			for label, f := range conformanceInstances(t) {
				var ref Result
				for i, workers := range []int{1, 3, 8} {
					s, err := New(engine,
						WithSeed(1), WithMaxSamples(1_000_000), WithWorkers(workers))
					if err != nil {
						t.Fatal(err)
					}
					r, err := s.Solve(context.Background(), f)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", label, workers, err)
					}
					r.Wall = 0 // wall clock is the one legitimately varying field
					if i == 0 {
						ref = r
						continue
					}
					if r.Status != ref.Status || r.Stats != ref.Stats {
						t.Errorf("%s: result changed with workers=%d:\n got %+v\nwant %+v",
							label, workers, r, ref)
					}
				}
			}
		})
	}
}

// TestStreamV1StillSelectable pins the migration oracle: the legacy
// contract stays reachable through the registry, reports itself in
// Stats, and still reaches correct verdicts on the paper instances.
func TestStreamV1StillSelectable(t *testing.T) {
	for label, f := range conformanceInstances(t) {
		oracle := ExactCheck(f)
		s, err := New("mc",
			WithSeed(1), WithMaxSamples(1_000_000), WithStreamVersion(StreamV1))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Solve(context.Background(), f)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if r.Stats.StreamVersion != StreamV1 {
			t.Errorf("%s: Stats.StreamVersion = %d, want %d",
				label, r.Stats.StreamVersion, StreamV1)
		}
		if r.Status == StatusSat && !oracle {
			t.Errorf("%s: v1 engine says SAT, oracle says UNSAT (%v)", label, r)
		}
		if r.Status == StatusUnsat && oracle {
			t.Errorf("%s: v1 engine says UNSAT, oracle says SAT (%v)", label, r)
		}
	}
}

// TestStreamVersionEchoedInStats pins the default contract's echo: a
// plain mc solve reports stream version 2.
func TestStreamVersionEchoedInStats(t *testing.T) {
	s, err := New("mc", WithSeed(1), WithMaxSamples(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Solve(context.Background(), PaperSAT())
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.StreamVersion != StreamV2 {
		t.Errorf("Stats.StreamVersion = %d, want %d", r.Stats.StreamVersion, StreamV2)
	}
}
