// Ablation benchmarks for the design choices documented in DESIGN.md:
// superposition vs. enumeration (the paper's central claim), the
// float64 underflow wall of the paper's U[-0.5,0.5] sources, parallel
// sampling scaling, and the single-wire hyperspace codec.
package repro

import (
	"math"
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hyperspace"
	"repro/internal/logic"
	"repro/internal/nblgates"
	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/wire"
)

// BenchmarkAblation_SuperpositionVsEnumeration quantifies what the NBL
// superposition buys: one factored O(n·m) sample versus the O(2^n·n·m)
// explicit enumeration a conventional evaluator needs. The reported
// metric is the speedup factor at n=14.
func BenchmarkAblation_SuperpositionVsEnumeration(b *testing.B) {
	const n, m = 14, 28
	g := rng.New(1)
	f := gen.RandomKSAT(g, n, m, 3)

	factored := hyperspace.New(f, noise.NewBank(noise.UniformUnit, 1, n, m))
	expanded := hyperspace.NewExpanded(f, noise.NewBank(noise.UniformUnit, 1, n, m))

	var tFac, tExp float64
	b.Run("factored", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += factored.Step().S
		}
		_ = sink
		tFac = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("enumerated", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += expanded.Step().S
		}
		_ = sink
		tExp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if tFac > 0 {
		b.ReportMetric(tExp/tFac, "speedup-n14")
	}
}

// BenchmarkAblation_UnderflowWall demonstrates the float64 failure mode
// of the paper's U[-0.5,0.5] family: E[S_N] = K'·(1/12)^(nm) underflows
// to zero for n·m >= 300, while unit-variance sources hold E[S_N] = K'
// at any size. The metric reports the first underflowing n·m.
func BenchmarkAblation_UnderflowWall(b *testing.B) {
	wall := 0
	for i := 0; i < b.N; i++ {
		wall = 0
		for nm := 1; nm < 1000; nm++ {
			if math.Pow(noise.UniformHalf.Sigma2(), float64(nm)) == 0 {
				wall = nm
				break
			}
		}
	}
	b.ReportMetric(float64(wall), "underflow-nm")
	// Sanity: unit variance never underflows.
	if math.Pow(noise.UniformUnit.Sigma2(), 1e6) != 1 {
		b.Fatal("unit-variance family should be underflow-free")
	}
}

// BenchmarkAblation_Workers measures parallel sampling scaling of the
// Monte-Carlo engine on a mid-size instance.
func BenchmarkAblation_Workers1(b *testing.B) { benchWorkers(b, 1) }

// BenchmarkAblation_Workers4 is the 4-worker variant.
func BenchmarkAblation_Workers4(b *testing.B) { benchWorkers(b, 4) }

func benchWorkers(b *testing.B, workers int) {
	g := rng.New(3)
	f := gen.RandomKSAT(g, 8, 16, 3)
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(f, core.Options{
			Family: noise.UniformUnit, Seed: uint64(i + 1),
			MaxSamples: 400_000, MinSamples: 400_000, CheckEvery: 100_000,
			Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		eng.Check()
	}
}

// BenchmarkAblation_WireMembership measures the single-wire hyperspace
// codec: one membership query (signal x reference correlation) on an
// 8-variable wire carrying a 16-minterm superposition.
func BenchmarkAblation_WireMembership(b *testing.B) {
	w, err := wire.New(8, noise.RTW, 1)
	if err != nil {
		b.Fatal(err)
	}
	set := make([]uint64, 16)
	for i := range set {
		set[i] = uint64(i * 13 % 256)
	}
	hits := 0
	for i := 0; i < b.N; i++ {
		m, err := w.Contains(set, set[i%len(set)], 20_000, 4)
		if err != nil {
			b.Fatal(err)
		}
		if m.Present {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "member-detection-rate")
}

// BenchmarkAblation_NoiseGates measures the ref-[13] gate realization:
// one full half-adder evaluation on noise carriers (6 correlation
// read-outs), reporting the weakest logic-1 margin at the default
// window.
func BenchmarkAblation_NoiseGates(b *testing.B) {
	c := logic.New()
	x := c.NewInput("a")
	y := c.NewInput("b")
	c.MarkOutput(c.Xor(x, y))
	c.MarkOutput(c.And(x, y))
	minZ := math.Inf(1)
	for i := 0; i < b.N; i++ {
		_, st, err := nblgates.Evaluate(c, []bool{true, true}, nblgates.Options{
			Family: noise.UniformUnit, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.MinOneZ < minZ {
			minZ = st.MinOneZ
		}
	}
	b.ReportMetric(minZ, "weakest-1-margin-z")
}

// BenchmarkAblation_CheckCostBySize sweeps the per-check cost over
// instance size at a fixed sample budget, showing the O(n·m) per-sample
// scaling of the factored evaluator (the budget needed for a *reliable*
// decision still grows exponentially; see E3).
func BenchmarkAblation_CheckCostBySize(b *testing.B) {
	for _, nm := range []struct{ n, m int }{{4, 8}, {8, 16}, {16, 32}, {32, 64}} {
		b.Run(sizeName(nm.n, nm.m), func(b *testing.B) {
			g := rng.New(7)
			f := gen.RandomKSAT(g, nm.n, nm.m, 3)
			bank := noise.NewBank(noise.UniformUnit, 1, nm.n, nm.m)
			ev := hyperspace.New(f, bank)
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += ev.Step().S
			}
			_ = sink
		})
	}
}

func sizeName(n, m int) string {
	return "n" + itoa(n) + "m" + itoa(m)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// TestAblationUnderflowWallValue pins the documented wall: (1/12)^nm
// leaves the normal float64 range at nm = 285 and underflows fully to
// zero at nm = 300.
func TestAblationUnderflowWallValue(t *testing.T) {
	if v := math.Pow(1.0/12, 284); v == 0 || v >= math.SmallestNonzeroFloat64*1e300 {
		// still representable (subnormal territory starts right after)
		_ = v
	}
	if v := math.Pow(1.0/12, 299); v == 0 {
		t.Error("(1/12)^299 should still be a subnormal, not zero")
	}
	if v := math.Pow(1.0/12, 300); v != 0 {
		t.Errorf("(1/12)^300 = %v, expected underflow to 0", v)
	}
}

// TestWorkerCountDoesNotChangeDecision: the parallel sampler must reach
// the same verdict for any worker count on a decisive instance.
func TestWorkerCountDoesNotChangeDecision(t *testing.T) {
	f := gen.PaperExample6()
	for _, workers := range []int{1, 2, 3, 8} {
		eng, err := core.NewEngine(f, core.Options{
			Family: noise.UniformUnit, Seed: 9,
			MaxSamples: 400_000, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r := eng.Check(); !r.Satisfiable {
			t.Errorf("workers=%d: misclassified: %v", workers, r)
		}
	}
	unbound := cnf.NewAssignment(f.NumVars)
	if core.WeightedCount(f, unbound).Int64() != 2 {
		t.Error("K' of Example 6 must be 2")
	}
}
