// End-to-end test of the fleet tier: build the real nblserve and
// nblrouter binaries, boot one router over two replicas (each with
// its own durable verdict store), and drive the fleet contracts over
// real TCP — fingerprint-routed placement, cross-node determinism, a
// renamed twin answered from cache without a second solve, warm-pool
// hits through the geometry-free shell keying, and a verdict
// surviving a replica kill/restart bit-identically through the store.
package repro

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// proc is one running fleet binary plus its parsed listen address.
type proc struct {
	cmd    *exec.Cmd
	done   chan error
	exited atomic.Bool // set once done has been consumed
	base   string      // http://host:port
	addr   string      // host:port
}

// startProc launches a binary, scans stdout for the "listening on"
// line, and keeps the pipe drained. Callers stop it via stop().
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	t.Cleanup(func() { p.stop(t) })

	sc := bufio.NewScanner(stdout)
	const marker = "listening on "
	deadline := time.After(15 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for p.addr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("%s exited before announcing its address", filepath.Base(bin))
			}
			if i := strings.Index(line, marker); i >= 0 {
				p.addr = strings.TrimSpace(line[i+len(marker):])
				p.base = "http://" + p.addr
			}
		case <-deadline:
			t.Fatalf("%s never announced its address", filepath.Base(bin))
		}
	}
	go func() { // keep draining after the address line
		for range lines {
		}
	}()
	return p
}

// stop kills the process if it is still running (idempotent).
func (p *proc) stop(t *testing.T) {
	if p.exited.Swap(true) {
		return
	}
	p.cmd.Process.Kill()
	<-p.done
}

// sigterm gracefully stops the process and requires a clean exit.
func (p *proc) sigterm(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.done:
		p.exited.Store(true)
		if err != nil {
			t.Fatalf("process exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("process did not exit after SIGTERM")
	}
}

// fleetPost posts a DIMACS body and returns the X-NBL-Node header,
// the decoded job, and the raw "result" JSON (for bit-identical
// comparisons across solves and nodes).
func fleetPost(t *testing.T, url, body string) (node string, job e2eJob, rawResult string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		t.Fatalf("POST %s: HTTP %d\n%s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatalf("bad job JSON: %v\n%s", err, data)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(data, &fields); err != nil {
		t.Fatal(err)
	}
	return resp.Header.Get("X-NBL-Node"), job, string(fields["result"])
}

// scrapeMetrics parses a Prometheus text endpoint into a map keyed by
// the full sample name (labels included).
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[sp+1:], 64); err == nil {
			out[line[:sp]] = v
		}
	}
	return out
}

func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs three processes")
	}
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "nblserve")
	routerBin := filepath.Join(dir, "nblrouter")
	for bin, pkg := range map[string]string{
		serveBin: "./cmd/nblserve", routerBin: "./cmd/nblrouter",
	} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	store0 := filepath.Join(dir, "store0.nbl")
	store1 := filepath.Join(dir, "store1.nbl")
	startReplica := func(addr, store, nodeID string) *proc {
		return startProc(t, serveBin,
			"-addr", addr, "-workers", "2", "-store", store, "-node-id", nodeID,
			"-drain", "10s")
	}
	n0 := startReplica("127.0.0.1:0", store0, "n0")
	n1 := startReplica("127.0.0.1:0", store1, "n1")
	waitHealthy(t, n0.base)
	waitHealthy(t, n1.base)

	rp := startProc(t, routerBin, "-addr", "127.0.0.1:0",
		"-nodes", fmt.Sprintf("n0=%s,n1=%s", n0.base, n1.base))
	waitHealthy(t, rp.base)
	replicas := map[string]*proc{"n0": n0, "n1": n1}
	stores := map[string]string{"n0": store0, "n1": store1}

	uf8 := readTestdata(t, "testdata/uf8-satlib.cnf")
	uf8Body, err := os.ReadFile("testdata/uf8-satlib.cnf")
	if err != nil {
		t.Fatal(err)
	}
	twinBody, err := os.ReadFile("testdata/uf8-renamed.cnf")
	if err != nil {
		t.Fatal(err)
	}
	twin := readTestdata(t, "testdata/uf8-renamed.cnf")
	const solveQ = "/solve?engine=cdcl&sync=1&model=1&seed=11"

	// 1. First solve lands wherever uf8's fingerprint says, and is a
	// real solve, not a cache hit.
	owner, first, firstRaw := fleetPost(t, rp.base+solveQ, string(uf8Body))
	if owner != "n0" && owner != "n1" {
		t.Fatalf("submit response names no node: %q", owner)
	}
	if first.State != "done" || first.CacheHit || first.Result == nil ||
		first.Result.Status != StatusSat {
		t.Fatalf("first uf8 solve: %+v", first)
	}
	if !strings.HasPrefix(first.ID, owner+"-") {
		t.Fatalf("job id %q not namespaced under %q", first.ID, owner)
	}

	// 2. The renamed twin routes to the same replica (fingerprint
	// affinity) and is answered from its verdict cache, with the model
	// translated into the twin's variable space.
	twinNode, twinJob, _ := fleetPost(t, rp.base+solveQ, string(twinBody))
	if twinNode != owner {
		t.Fatalf("renamed twin routed to %q, original to %q", twinNode, owner)
	}
	if !twinJob.CacheHit || twinJob.Result == nil || twinJob.Result.Status != StatusSat {
		t.Fatalf("renamed twin should be a cache hit: %+v", twinJob)
	}
	if twinJob.Result.Assignment == nil || !twinJob.Result.Assignment.Satisfies(twin) {
		t.Fatal("translated model does not satisfy the twin")
	}
	m := scrapeMetrics(t, rp.base)
	if got := m["nblfleet_cache_hits_total"]; got != 1 {
		t.Fatalf("nblfleet_cache_hits_total = %v, want exactly 1 (one solve, one remote hit)", got)
	}

	// 3. Cross-node determinism: the other replica, solving uf8 cold
	// (its cache and store have never seen it), must produce the same
	// verdict, model, and effort accounting bit-for-bit (wall excluded
	// — it is clock, not computation).
	other := "n1"
	if owner == "n1" {
		other = "n0"
	}
	_, cold, _ := fleetPost(t, replicas[other].base+solveQ, string(uf8Body))
	if cold.CacheHit {
		t.Fatalf("cold replica %s reported a cache hit", other)
	}
	if cold.Result == nil || cold.Result.Status != first.Result.Status ||
		cold.Result.Stats != first.Result.Stats ||
		!reflect.DeepEqual(cold.Result.Assignment, first.Result.Assignment) {
		t.Fatalf("cross-node determinism broken:\n%s: %+v\n%s: %+v",
			owner, first.Result, other, cold.Result)
	}
	if !cold.Result.Assignment.Satisfies(uf8) {
		t.Fatal("cold replica's model does not satisfy uf8")
	}

	// 4. Warm-pool economics: distinct trivial instances (different
	// fingerprints AND different geometries) through the stateless
	// pre(mc) shell. However placement splits them, at most one lease
	// per replica is cold — geometry-free shell keying makes every
	// subsequent pre(mc) lease on a node warm.
	before := scrapeMetrics(t, rp.base)["nblfleet_pool_warm_hits_total"]
	trivial := []string{
		"p cnf 3 3\n1 0\n2 0\n3 0\n",
		"p cnf 3 3\n-1 0\n2 0\n3 0\n",
		"p cnf 4 4\n1 0\n2 0\n3 0\n4 0\n",
		"p cnf 4 4\n-1 0\n-2 0\n3 0\n4 0\n",
		"p cnf 5 5\n1 0\n2 0\n3 0\n4 0\n5 0\n",
		"p cnf 5 5\n-1 0\n-2 0\n-3 0\n4 0\n5 0\n",
	}
	for i, body := range trivial {
		_, job, _ := fleetPost(t,
			rp.base+"/solve?engine=pre(mc)&sync=1&samples=400000", body)
		if job.State != "done" || job.Result == nil || job.Result.Status != StatusSat {
			t.Fatalf("trivial instance %d: %+v", i, job)
		}
	}
	after := scrapeMetrics(t, rp.base)["nblfleet_pool_warm_hits_total"]
	if warm := after - before; warm < float64(len(trivial)-2) {
		t.Fatalf("fleet warm-pool hits rose by %v over %d shell jobs, want >= %d",
			warm, len(trivial), len(trivial)-2)
	}

	// 5. Kill the owning replica and restart it on the same address
	// over the same store file. Its LRU starts empty; the resubmitted
	// formula must come back as a store-backed cache hit, bit-identical
	// to the original result — wall and stats included, because the
	// store replays the recorded verdict rather than re-solving.
	replicas[owner].sigterm(t)
	restarted := startReplica(replicas[owner].addr, stores[owner], owner)
	waitHealthy(t, restarted.base)

	reNode, rejob, reRaw := fleetPost(t, rp.base+solveQ, string(uf8Body))
	if reNode != owner {
		t.Fatalf("post-restart submit routed to %q, want %q", reNode, owner)
	}
	if !rejob.CacheHit || rejob.Result == nil || rejob.Result.Status != StatusSat {
		t.Fatalf("restarted replica should answer from the store: %+v", rejob)
	}
	if reRaw != firstRaw {
		t.Fatalf("store-backed verdict is not bit-identical:\nfirst   %s\nreplay  %s",
			firstRaw, reRaw)
	}
	m = scrapeMetrics(t, rp.base)
	if got := m[`nblserve_store_hits_total{node="`+owner+`"}`]; got != 1 {
		t.Fatalf("restarted %s store hits = %v, want 1", owner, got)
	}
	if got := m["nblfleet_store_hits_total"]; got != 1 {
		t.Fatalf("nblfleet_store_hits_total = %v, want 1", got)
	}

	// 6. The fleet front stays coherent: the job proxied through the
	// router resolves on the restarted node, and /healthz reports a
	// fully healthy fleet.
	var proxied e2eJob
	getJSON(t, rp.base+"/jobs/"+rejob.ID, &proxied)
	if proxied.ID != rejob.ID || proxied.State != "done" {
		t.Fatalf("proxied job after restart: %+v", proxied)
	}
	var health struct {
		Status string `json:"status"`
		Nodes  []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
		} `json:"nodes"`
	}
	getJSON(t, rp.base+"/healthz", &health)
	if health.Status != "ok" || len(health.Nodes) != 2 {
		t.Fatalf("fleet health: %+v", health)
	}
	for _, nd := range health.Nodes {
		if !nd.Healthy {
			t.Fatalf("node %s unhealthy after restart: %+v", nd.Name, health)
		}
	}

	// 7. Fleet-wide tracing: a routed solve that reaches a sampling
	// engine yields ONE trace tree under one trace ID — the router's
	// submit spans with the replica's queue/cache/pool/pipeline/engine
	// spans grafted beneath them — and the UNKNOWN mc verdict's check
	// span carries a non-empty SNR trajectory.
	hardBody, err := os.ReadFile("testdata/rand8-hard.cnf")
	if err != nil {
		t.Fatal(err)
	}
	hardNode, hardJob, _ := fleetPost(t,
		rp.base+"/solve?engine=pre(mc)&sync=1&samples=50000", string(hardBody))
	if hardJob.State != "done" || hardJob.Result == nil ||
		hardJob.Result.Status != StatusUnknown {
		t.Fatalf("hard instance should finish UNKNOWN: %+v", hardJob)
	}
	var tr obs.TraceJSON
	getJSON(t, rp.base+"/jobs/"+hardJob.ID+"/trace", &tr)
	if tr.TraceID == "" {
		t.Fatal("fleet trace has no trace ID")
	}
	if tr.Job != hardJob.ID {
		t.Fatalf("fleet trace tagged %q, want %q", tr.Job, hardJob.ID)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "router.submit" {
		t.Fatalf("fleet trace should be one tree under router.submit, got %+v", tr.Spans)
	}
	for _, name := range []string{
		"router.forward", "job", "queue.wait", "cache.lru", "pool.acquire",
		"solve", "pipeline.simplify", "pipeline.component", "mc.check",
	} {
		if tr.Find(name) == nil {
			t.Errorf("fleet trace is missing the %q span", name)
		}
	}
	check := tr.Find("mc.check")
	if check == nil || len(check.Traj) == 0 {
		t.Fatalf("UNKNOWN verdict's check span has no SNR trajectory: %+v", check)
	}

	// The replica's own copy of the trace (fetched directly, bypassing
	// the router) must carry the same trace ID — one ID across both
	// processes is what makes the fleet hop diagnosable.
	remote := strings.TrimPrefix(hardJob.ID, hardNode+"-")
	var replicaTr obs.TraceJSON
	getJSON(t, replicas[hardNode].base+"/jobs/"+remote+"/trace", &replicaTr)
	if replicaTr.TraceID != tr.TraceID {
		t.Fatalf("trace ID split across the fleet hop: router %q, replica %q",
			tr.TraceID, replicaTr.TraceID)
	}
}
