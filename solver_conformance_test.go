// Conformance suite for the unified Solver API: every engine in the
// registry must (a) agree with the idealized exact engine on the
// paper's instances, and (b) honor context cancellation promptly.
// New engines get both guarantees for free by registering.
package repro

import (
	"context"
	"errors"
	"testing"
	"time"
)

// conformanceInstances are the paper's named instances with their
// ground-truth satisfiability (cross-checked against ExactCheck below).
func conformanceInstances(t *testing.T) map[string]*Formula {
	t.Helper()
	return map[string]*Formula{
		"PaperSAT":      PaperSAT(),
		"PaperUNSAT":    PaperUNSAT(),
		"PaperExample6": PaperExample6(),
		"PaperExample7": PaperExample7(),
	}
}

// conformanceOpts keeps the stochastic engines fast but reliable on the
// tiny paper instances. The budget must clear the Section III-F SNR
// requirement for an UNSAT claim on PaperUNSAT (n·m = 8 needs
// 1 + 9·4^8 = 589,825 samples), or the sampling engines would be forced
// into an honest UNKNOWN.
func conformanceOpts() []Option {
	return []Option{WithSeed(1), WithMaxSamples(1_000_000)}
}

func TestEngineConformanceWithExactCheck(t *testing.T) {
	engines := Engines()
	if len(engines) < 10 {
		t.Fatalf("registry too small: %v", engines)
	}
	for _, name := range engines {
		t.Run(name, func(t *testing.T) {
			s, err := New(name, conformanceOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			for label, f := range conformanceInstances(t) {
				oracle := ExactCheck(f)
				r, err := s.Solve(context.Background(), f)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				switch r.Status {
				case StatusSat:
					if !oracle {
						t.Errorf("%s: engine says SAT, oracle says UNSAT (%v)", label, r)
					}
					if r.Assignment != nil && !r.Assignment.Satisfies(f) {
						t.Errorf("%s: returned model does not satisfy: %v", label, r)
					}
				case StatusUnsat:
					if oracle {
						t.Errorf("%s: engine says UNSAT, oracle says SAT (%v)", label, r)
					}
				case StatusUnknown:
					// Only honest shrugs are allowed: local search can never
					// certify UNSAT, and SBL's DC read-out is only a verdict
					// when the observation window covered a full carrier
					// period (PaperSAT/PaperUNSAT need ~8.6e9 samples).
					okUnknown := (name == "walksat" && !oracle) || name == "sbl"
					if !okUnknown {
						t.Errorf("%s: unexpected UNKNOWN from %s (%v)", label, name, r)
					}
				}
				if r.Engine == "" {
					t.Errorf("%s: result does not name its engine: %v", label, r)
				}
			}
		})
	}
}

func TestEngineCancellationOnExpiredDeadline(t *testing.T) {
	f := PaperSAT()
	for _, name := range Engines() {
		t.Run(name, func(t *testing.T) {
			// A huge budget makes any engine that ignores the deadline
			// hang well past the promptness window.
			s, err := New(name, WithSeed(1), WithMaxSamples(1<<40))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			defer cancel()

			type outcome struct {
				r   Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				r, err := s.Solve(ctx, f)
				done <- outcome{r, err}
			}()
			select {
			case o := <-done:
				if !errors.Is(o.err, context.DeadlineExceeded) {
					t.Errorf("err = %v, want DeadlineExceeded", o.err)
				}
				if o.r.Status != StatusUnknown {
					t.Errorf("Status = %v, want UNKNOWN on cancellation", o.r.Status)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("engine %s did not return promptly on expired deadline", name)
			}
		})
	}
}

func TestEngineMidRunCancellation(t *testing.T) {
	// Cancel while the engines are genuinely inside their hot loops
	// (the registry wrapper short-circuits an already-expired context
	// before the engine runs, so TestEngineCancellationOnExpiredDeadline
	// alone would never exercise the engines' own polling). Every engine
	// gets an instance it cannot decide before the deadline fires: the
	// samplers get effectively unbounded budgets on an UNSAT instance
	// (no lucky-model exit), the search engines get pigeonhole formulas
	// (exponential for resolution; solo runs take 0.4s–13s), and the
	// exact enumerator gets a 2^26 minterm space (~20s solo).
	paperUnsat := PaperUNSAT()
	cases := []struct {
		name string
		f    *Formula
	}{
		{"mc", paperUnsat},
		{"walksat", paperUnsat},
		{"rtw", paperUnsat},
		{"sbl", paperUnsat},
		{"analog", paperUnsat},
		{"dpll", Pigeonhole(8)},
		{"cdcl", Pigeonhole(8)},
		{"hybrid", Pigeonhole(4)}, // exact coprocessor caps vars at 28
		{"exact", RandomKSAT(7, 26, 60, 3)},
		{"portfolio", paperUnsat}, // lineup below: one unbounded sampler
		// The counting engines poll inside their own hot loops: the
		// count DPLL explores PHP8's full refutation tree, and the
		// weighted enumerator walks a 2^26 assignment space (the
		// single random component stays under the 28-variable bound).
		{"count", Pigeonhole(8)},
		{"wcount", RandomKSAT(7, 26, 60, 3)},
	}
	if want, got := len(Engines()), len(cases); want != got {
		t.Fatalf("covering %d of %d registered engines: %v", got, want, Engines())
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := New(c.name, WithSeed(1), WithMaxSamples(1<<40),
				WithRestarts(1<<30), WithMaxFlips(1<<30), WithMembers("mc"))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, err := s.Solve(ctx, c.f)
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("err = %v, want DeadlineExceeded", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("engine %s ignored mid-run cancellation", c.name)
			}
		})
	}
}

func TestEmptyClauseIsStructurallyUnsat(t *testing.T) {
	// A formula containing the empty clause is certainly UNSAT with zero
	// sampling: the core engine short-circuits before the sampler, and
	// the SNR budget gate must not downgrade that structural verdict to
	// UNKNOWN (regression: mc once reported UNKNOWN here while exact
	// reported UNSAT).
	f := FromClauses([]int{1, 2}, []int{})
	for _, name := range []string{"mc", "exact", "dpll", "cdcl"} {
		r, err := Solve(context.Background(), name, f)
		if err != nil || r.Status != StatusUnsat {
			t.Errorf("%s: got (%v, %v), want UNSAT", name, r.Status, err)
		}
	}
	r, err := Solve(context.Background(), "mc", f, WithModel(true))
	if err != nil || r.Status != StatusUnsat {
		t.Errorf("mc with model: got (%v, %v), want UNSAT", r.Status, err)
	}
}

func TestSolveConvenience(t *testing.T) {
	r, err := Solve(context.Background(), "cdcl", PaperExample6())
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusSat || !r.Assignment.Satisfies(PaperExample6()) {
		t.Fatalf("Solve convenience: %v", r)
	}
	if _, err := Solve(context.Background(), "nope", PaperExample6()); err == nil {
		t.Fatal("expected unknown-engine error")
	}
}
