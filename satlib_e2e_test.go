package repro

import (
	"context"
	"os"
	"testing"
)

// readTestdata parses one of the SATLIB-dialect files under testdata/.
func readTestdata(t *testing.T, path string) *Formula {
	t.Helper()
	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	f, err := ReadDIMACS(file)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return f
}

// TestSATLIBTrailerFileSolvesEndToEnd is the end-to-end regression for
// the SATLIB trailer bug: benchmark-dialect files (with the "%" / "0"
// trailer) must parse and solve through the public solver registry —
// before the fix they either failed the clause-count check or silently
// gained an empty clause and came back UNSAT.
func TestSATLIBTrailerFileSolvesEndToEnd(t *testing.T) {
	// A planted (known satisfiable) uf-style instance, solved by a
	// complete engine with model verification.
	uf8 := readTestdata(t, "testdata/uf8-satlib.cnf")
	if uf8.NumVars != 8 || uf8.NumClauses() != 24 {
		t.Fatalf("uf8 dims: %d vars %d clauses", uf8.NumVars, uf8.NumClauses())
	}
	for i, c := range uf8.Clauses {
		if len(c) == 0 {
			t.Fatalf("uf8 clause %d empty: trailer leaked into clause data", i)
		}
	}
	s, err := New("cdcl", WithModel(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), uf8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSat {
		t.Fatalf("uf8 status %v, want SAT (planted instance)", res.Status)
	}
	if res.Assignment == nil || !res.Assignment.Satisfies(uf8) {
		t.Fatalf("cdcl model %v does not satisfy the instance", res.Assignment)
	}

	// The paper's own S_SAT in SATLIB dialect, decided by the default
	// NBL Monte-Carlo engine — the same path cmd/nblsat takes.
	paper := readTestdata(t, "testdata/paper-sat-satlib.cnf")
	mc, err := New("mc", WithSeed(1), WithMaxSamples(400_000))
	if err != nil {
		t.Fatal(err)
	}
	res, err = mc.Solve(context.Background(), paper)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSat {
		t.Fatalf("paper S_SAT via mc: status %v (stats %+v), want SAT", res.Status, res.Stats)
	}
}
