// Cross-engine integration tests: every satisfiability engine in the
// repository must agree on a randomized sweep of small instances, with
// the exhaustive model counter as the oracle. This is the repository's
// strongest end-to-end consistency check, crossing package boundaries:
// cnf -> gen -> {core exact, rtw, sbl, analog, dpll, cdcl, hybrid} and
// dimacs round-tripping in the middle.
package repro

import (
	"strings"
	"testing"

	"repro/internal/analog"
	"repro/internal/cdcl"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/dpll"
	"repro/internal/gen"
	"repro/internal/hybrid"
	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/rtw"
	"repro/internal/sbl"
)

func TestIntegrationEngineAgreementSweep(t *testing.T) {
	g := rng.New(2024)
	for trial := 0; trial < 50; trial++ {
		n := 1 + g.Intn(6)
		m := 1 + g.Intn(3*n)
		k := 1 + g.Intn(min(3, n))
		f := gen.RandomKSAT(g, n, m, k)

		// Round-trip through DIMACS first: the engines must see an
		// identical instance after serialization.
		var sb strings.Builder
		if err := WriteDIMACS(&sb, f, "integration sweep"); err != nil {
			t.Fatal(err)
		}
		f2, err := ReadDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if f2.String() != f.String() {
			t.Fatalf("trial %d: DIMACS round trip changed the formula", trial)
		}

		oracle := count.Brute(f2) > 0

		if got := core.ExactCheck(f2); got != oracle {
			t.Errorf("trial %d: exact NBL = %v, oracle = %v\n%s", trial, got, oracle, f2)
		}
		if _, got := dpll.Solve(f2); got != oracle {
			t.Errorf("trial %d: DPLL = %v, oracle = %v", trial, got, oracle)
		}
		if _, got := cdcl.Solve(f2); got != oracle {
			t.Errorf("trial %d: CDCL = %v, oracle = %v", trial, got, oracle)
		}
		if got := hybrid.SolveExact(f2).Satisfiable; got != oracle {
			t.Errorf("trial %d: hybrid = %v, oracle = %v", trial, got, oracle)
		}
	}
}

func TestIntegrationStochasticEnginesOnDecisiveInstances(t *testing.T) {
	// The finite-sample engines (core MC, RTW, SBL, analog) are checked
	// on instances small enough that their SNR makes the decision
	// reliable at a test-friendly budget (nm <= 6).
	g := rng.New(77)
	for trial := 0; trial < 6; trial++ {
		n := 1 + g.Intn(3)
		m := 1 + g.Intn(2)
		f := gen.RandomKSAT(g, n, m, 1+g.Intn(min(2, n)))
		oracle := count.Brute(f) > 0
		seed := uint64(100 + trial)

		eng, err := core.NewEngine(f, core.Options{
			Family: noise.UniformUnit, Seed: seed, MaxSamples: 600_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.Check().Satisfiable; got != oracle {
			t.Errorf("trial %d: MC = %v, oracle = %v\n%s", trial, got, oracle, f)
		}

		re, err := rtw.New(f, seed)
		if err != nil {
			t.Fatal(err)
		}
		if got := re.Check(600_000, 4).Satisfiable; got != oracle {
			t.Errorf("trial %d: RTW = %v, oracle = %v\n%s", trial, got, oracle, f)
		}

		se, err := sbl.New(f, sbl.Options{Alloc: sbl.Geometric4, MaxSamples: 1 << 21})
		if err != nil {
			t.Fatal(err)
		}
		if r := se.Check(); r.FullPeriod && r.Satisfiable != oracle {
			t.Errorf("trial %d: SBL = %v, oracle = %v\n%s", trial, r.Satisfiable, oracle, f)
		}

		ae, err := analog.Compile(f, noise.UniformUnit, seed)
		if err != nil {
			t.Fatal(err)
		}
		if got := ae.Check(600_000, 4).Satisfiable; got != oracle {
			t.Errorf("trial %d: analog = %v, oracle = %v\n%s", trial, got, oracle, f)
		}
	}
}

func TestIntegrationAssignmentPipelines(t *testing.T) {
	// Algorithm 2 via three independent routes (core MC, RTW, exact) on
	// the same planted instance; all must return verified models.
	g := rng.New(55)
	f, _ := gen.PlantedKSAT(g, 3, 2, 2)

	eng, err := core.NewEngine(f, core.Options{
		Family: noise.UniformUnit, Seed: 8, MaxSamples: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Assign()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Satisfies(f) {
		t.Error("core MC assignment invalid")
	}

	re, err := rtw.New(f, 9)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := re.Assign(800_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Satisfies(f) {
		t.Error("RTW assignment invalid")
	}

	a3, ok := core.ExactAssign(f)
	if !ok || !a3.Satisfies(f) {
		t.Error("exact assignment invalid")
	}
}

func TestIntegrationWeightedCountConsistency(t *testing.T) {
	// K' from the core engine equals the count package's weighted brute
	// force across a sweep, and the SBL full-period DC equals K' for
	// tiny instances — three independent computations of E[S_N].
	g := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		n := 1 + g.Intn(2)
		m := 1 + g.Intn(2)
		f := gen.RandomKSAT(g, n, m, 1)
		unbound := cnf.NewAssignment(f.NumVars)
		kpCore := core.WeightedCount(f, unbound)
		kpCount := count.WeightedBrute(f)
		if kpCore.Cmp(kpCount) != 0 {
			t.Fatalf("trial %d: K' mismatch %s vs %s", trial, kpCore, kpCount)
		}
		se, err := sbl.New(f, sbl.Options{Alloc: sbl.Geometric4, MaxSamples: 1 << 21})
		if err != nil {
			t.Fatal(err)
		}
		if r := se.Check(); r.FullPeriod {
			kp := float64(kpCore.Int64())
			if diff := r.Mean - kp; diff > 1e-4 || diff < -1e-4 {
				t.Errorf("trial %d: SBL DC %v vs K' %v", trial, r.Mean, kp)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
